package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/obs"
	"bioopera/internal/ocr"
	"bioopera/internal/sched"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// Engine errors.
var (
	ErrUnknownTemplate = errors.New("core: unknown template")
	ErrUnknownInstance = errors.New("core: unknown instance")
	ErrBadState        = errors.New("core: operation invalid in current state")
	ErrNotOwner        = errors.New("core: instance not owned by this server")
	ErrDuplicateID     = errors.New("core: instance ID already in use")
)

// Launch describes one activity dispatch in full: the scheduling decision
// (job, node, cost, niceness) plus the resolved external binding. Each
// executor uses the part it needs — the simulated cluster models only the
// cost, the local pool calls Run in-process, and the remote server ships
// Program/Inputs/Ctx over the wire to a worker agent.
type Launch struct {
	Job  cluster.JobID
	Node string
	Cost time.Duration
	Nice bool
	// Timeout bounds this attempt's wall-clock run time (0 = no limit).
	// The dispatcher enforces it through Kill; executors may also use it
	// as a hint but need not act on it.
	Timeout time.Duration
	// Program names the external binding; Inputs and Ctx are what its
	// invocation receives. Executors that run programs off-engine use
	// these to reconstruct the call on the worker.
	Program string
	Inputs  map[string]ocr.Value
	Ctx     ProgramCtx
	// Run invokes the binding in-process (the local pool's path). The
	// simulated cluster ignores it — leaving Outputs nil in the
	// completion makes the engine run the program at completion time,
	// which keeps simulated traces deterministic.
	Run func() (map[string]ocr.Value, error)
}

// Executor abstracts the cluster the dispatcher talks to: the simulated
// cluster, the local goroutine pool, and the remote worker server all
// implement it.
type Executor interface {
	// Nodes returns the current placement view.
	Nodes() []cluster.NodeView
	// Launch starts a job; completions arrive via the engine's
	// HandleCompletion.
	Launch(l Launch) error
	// Kill aborts a running job; a completion with an error follows.
	Kill(id cluster.JobID, node string) error
}

// Clock supplies virtual (or pseudo-real) time for accounting.
type Clock interface{ Now() sim.Time }

// ClockFunc adapts a function to Clock.
type ClockFunc func() sim.Time

// Now implements Clock.
func (f ClockFunc) Now() sim.Time { return f() }

// EventKind classifies engine events.
type EventKind string

// Engine event kinds.
const (
	EvInstanceStarted   EventKind = "instance-started"
	EvInstanceDone      EventKind = "instance-done"
	EvInstanceFailed    EventKind = "instance-failed"
	EvInstanceSuspended EventKind = "instance-suspended"
	EvInstanceResumed   EventKind = "instance-resumed"
	EvTaskReady         EventKind = "task-ready"
	EvTaskDispatched    EventKind = "task-dispatched"
	EvTaskEnded         EventKind = "task-ended"
	EvTaskFailed        EventKind = "task-failed"
	EvTaskRetried       EventKind = "task-retried"
	EvTaskTimeout       EventKind = "task-timeout"
	EvTaskDead          EventKind = "task-dead"
	EvServerRecovered   EventKind = "server-recovered"
	EvSphereAborted     EventKind = "sphere-aborted"
	EvUndoRun           EventKind = "undo-run"
	EvUndoFailed        EventKind = "undo-failed"
	EvTaskAwaiting      EventKind = "task-awaiting"
	EvSignal            EventKind = "signal"
	EvPersistError      EventKind = "persist-error"
	EvNodeJoined        EventKind = "node-joined"
	EvNodeDown          EventKind = "node-down"
	EvTaskUnplaceable   EventKind = "task-unplaceable"
)

// Event is one engine-level occurrence, persisted to the history journal.
type Event struct {
	At       sim.Time  `json:"at"`
	Kind     EventKind `json:"kind"`
	Instance string    `json:"instance,omitempty"`
	Scope    string    `json:"scope,omitempty"`
	Task     string    `json:"task,omitempty"`
	Node     string    `json:"node,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// DefaultShards is the size of the instance lock table when Options.Shards
// is zero.
const DefaultShards = 32

// Options configure an Engine.
type Options struct {
	// Store persists templates, instances, configuration and history.
	// Required.
	Store store.Store
	// Library resolves external bindings. Required.
	Library *Library
	// Executor runs activities. Required.
	Executor Executor
	// Clock supplies time. Required.
	Clock Clock
	// Policy places activities; defaults to LeastLoaded.
	Policy sched.Policy
	// Quotas assigns per-tenant fair-share weights for the activity
	// queue (unlisted tenants weigh 1). Tenancy comes from
	// StartOptions.Tenant; with a single tenant the queue order is the
	// plain (priority, FIFO) of the pre-tenancy engine.
	Quotas map[string]float64
	// Shards sizes the instance lock table (default DefaultShards).
	// 1 serializes all instances against each other — the pre-sharding
	// behaviour, kept as a benchmark baseline.
	Shards int
	// RecoverWorkers bounds the goroutines that decode and rebuild
	// instances during Recover (default: Shards). Decoding dominates
	// recovery cost and is per-instance, so it parallelizes cleanly; the
	// resume phase stays serial either way, keeping traces deterministic.
	RecoverWorkers int
	// LazyRecovery makes Recover materialize suspended instances as
	// meta-only stubs whose scope records are decoded on first mutating
	// touch (Resume, Abort, Signal, SetParameter, Lineage). Boot time
	// then scales with the active fraction of the store, not its size;
	// observers (monitor, Progress) see a meta-only view of stubs.
	LazyRecovery bool
	// OnInstanceDone fires when an instance reaches Done or Failed.
	OnInstanceDone func(*Instance)
	// OnEvent observes every engine event (may be nil). It may be called
	// from any goroutine driving the engine.
	OnEvent func(Event)
	// OnError observes asynchronous engine errors — today, checkpoint
	// (persist/archive) failures that have no caller to return to. May
	// be called from any goroutine driving the engine.
	OnError func(error)
	// After schedules f to run once, d from now, returning a cancel
	// function; the dispatcher uses it to enforce task TIMEOUT
	// annotations. Defaults to time.AfterFunc (real time); the sim
	// runtime installs a virtual-time timer so timeouts stay
	// deterministic.
	After func(d time.Duration, f func()) (cancel func())
	// Metrics, when non-nil, registers the engine's instrumentation:
	// event counters by kind, per-shard navigation turn counts, turn
	// latency, and queue-depth/running-jobs gauges. Handles are
	// pre-resolved at New, so the enabled hot-path cost is a few atomic
	// adds; nil disables instrumentation entirely.
	Metrics *obs.Registry
	// EventRing, when non-nil, receives every emitted event's serialized
	// JSON for live tailing (the monitor's /api/events). Publishing never
	// blocks, so a stalled subscriber cannot slow emit.
	EventRing *obs.Ring
	// Owns, when non-nil, partitions instance ownership across federated
	// engines sharing one store: every mutating entry point (StartProcess
	// with an explicit ID, Suspend, Resume, Abort, SetParameter, Signal)
	// fails with ErrNotOwner for IDs outside this engine's partition,
	// Recover adopts only owned instances, and checkpoint batches are
	// fenced at commit time — a checkpoint cut while owned but flushed
	// after ownership moved is dropped, so an engine that lost a lease
	// (or is draining through shutdown while a peer adopts its work) can
	// never clobber its successor's records. The callback must be safe
	// for concurrent use and may change its answer over time (ownership
	// moves on failover); nil means the engine owns everything.
	Owns func(id string) bool
}

// queuedRef connects a queued sched.Job back to its task.
type queuedRef struct {
	inst *Instance
	sc   *scope
	ts   *taskState
	job  sched.Job // the queued job as built at enqueue (cost, tenant, key)
	node string    // dispatch target; set under dmu when the job starts running
	// cancelTimeout stops the TIMEOUT timer armed at dispatch; set and
	// cleared under dmu while the job is in the running map.
	cancelTimeout func()
}

// Engine is the BioOpera server: navigator + dispatcher + recovery.
//
// It is internally synchronized and safe for concurrent callers. Each
// instance's navigation is strictly serialized by an instance-sharded lock
// table (shardFor), preserving the paper's per-instance semantics, while
// independent instances execute and checkpoint concurrently. Cross-instance
// state lives behind two small front-end locks:
//
//	emu  templates and the instance registry
//	dmu  the activity queue and the queued/running/waiting/signal indexes
//
// Lock order is shard → emu/dmu (emu and dmu are leaves, except that Crash
// takes emu then dmu). Navigation never calls Executor.Kill or Pump while
// holding a shard: kills are deferred to endTurn (executors may deliver the
// kill completion synchronously, re-entering the same shard) and Pump runs
// at the tail of every public entry point.
type Engine struct {
	opts    Options
	sched   *sched.Scheduler
	metrics *engineMetrics // nil when Options.Metrics is nil

	paused atomic.Bool // global suspend (server-level)

	shards []sync.Mutex // instance lock table; shardFor hashes instance IDs

	emu       sync.RWMutex
	templates map[string]*ocr.Process
	instances map[string]*Instance
	order     []string // instance creation order, for determinism
	nextID    int

	dmu     sync.Mutex
	queued  map[string]*queuedRef             // job ID → queued task
	running map[string]*queuedRef             // job ID → running task
	waiting map[string][]*queuedRef           // instance|event → AWAIT tasks
	signals map[string][]map[string]ocr.Value // buffered signals
}

// New builds an engine and loads templates already in the store.
func New(opts Options) (*Engine, error) {
	if opts.Store == nil || opts.Library == nil || opts.Executor == nil || opts.Clock == nil {
		return nil, fmt.Errorf("core: Store, Library, Executor and Clock are required")
	}
	if opts.Shards <= 0 {
		opts.Shards = DefaultShards
	}
	if opts.RecoverWorkers <= 0 {
		opts.RecoverWorkers = opts.Shards
	}
	if opts.After == nil {
		opts.After = func(d time.Duration, f func()) func() {
			//bioopera:allow walltime real-time default by contract; the sim runtime installs a virtual-clock After
			t := time.AfterFunc(d, f)
			return func() { t.Stop() }
		}
	}
	e := &Engine{
		opts:      opts,
		sched:     sched.New(sched.Config{Policy: opts.Policy, Quotas: opts.Quotas}),
		shards:    make([]sync.Mutex, opts.Shards),
		templates: make(map[string]*ocr.Process),
		instances: make(map[string]*Instance),
		queued:    make(map[string]*queuedRef),
		running:   make(map[string]*queuedRef),
		waiting:   make(map[string][]*queuedRef),
		signals:   make(map[string][]map[string]ocr.Value),
	}
	kvs, err := opts.Store.List(store.Template)
	if err != nil {
		return nil, err
	}
	for _, kv := range kvs {
		p, err := ocr.ParseProcess(string(kv.Value))
		if err != nil {
			return nil, fmt.Errorf("core: template %q in store is invalid: %w", kv.Key, err)
		}
		e.templates[kv.Key] = p
	}
	if opts.Metrics != nil {
		e.metrics = newEngineMetrics(opts.Metrics, e)
	}
	return e, nil
}

// shardIndex maps an instance ID to its lock shard (FNV-1a).
func (e *Engine) shardIndex(id string) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(len(e.shards)))
}

// shardFor maps an instance ID to its lock.
func (e *Engine) shardFor(id string) *sync.Mutex {
	return &e.shards[e.shardIndex(id)]
}

// lookup finds an instance in the registry.
func (e *Engine) lookup(id string) (*Instance, bool) {
	e.emu.RLock()
	in, ok := e.instances[id]
	e.emu.RUnlock()
	return in, ok
}

// endTurn closes an instance's critical section: it releases the shard,
// delivers kills deferred during navigation (outside the lock, because the
// executor may deliver the kill completion synchronously), and optionally
// pumps the dispatcher.
func (e *Engine) endTurn(in *Instance, mu *sync.Mutex, pump bool) {
	kills := in.pendingKills
	in.pendingKills = nil
	cks := in.pendingCkpts
	in.pendingCkpts = nil
	done := in.pendingDone
	in.pendingDone = false
	if in.turnLive {
		in.turnLive = false
		e.metrics.turn(e.shardIndex(in.ID), e.now().Sub(in.turnStart))
	}
	mu.Unlock()
	// Flush this turn's checkpoints outside the critical section: JSON
	// marshaling and the store batch run here, ordered by the instance's
	// commit gate.
	for _, ck := range cks {
		e.flushCkpt(in, ck)
	}
	// OnInstanceDone fires after the final checkpoint committed, so a
	// waiter woken by it reads the archived state from the store.
	if done && e.opts.OnInstanceDone != nil {
		e.opts.OnInstanceDone(in)
	}
	for _, k := range kills {
		e.opts.Executor.Kill(cluster.JobID(k.job), k.node)
	}
	if pump {
		e.Pump()
	}
}

func (e *Engine) now() sim.Time { return e.opts.Clock.Now() }

func (e *Engine) emit(ev Event) {
	ev.At = e.now()
	if data, err := json.Marshal(ev); err == nil {
		if _, err := e.opts.Store.AppendEvent(data); err != nil && e.opts.OnError != nil {
			e.opts.OnError(fmt.Errorf("core: append event %s: %w", ev.Kind, err))
		}
		// The ring shares the already-marshaled bytes; Publish never
		// blocks, so a stalled monitor client cannot slow navigation.
		e.opts.EventRing.Publish(data)
	}
	e.metrics.event(ev.Kind)
	if e.opts.OnEvent != nil {
		e.opts.OnEvent(ev)
	}
}

// EmitInfra publishes an infrastructure event (worker joined or lost, load
// change) through the engine's full event path — journal, event ring,
// metrics, OnEvent — so events originating outside navigation reach every
// observer the navigation events reach. The timestamp is stamped from the
// engine clock.
func (e *Engine) EmitInfra(ev Event) { e.emit(ev) }

// RegisterTemplate validates a process and stores it in the template
// space under its name. Existing templates are replaced; running
// instances keep the definition they started with (late binding picks up
// the new version for subprocesses instantiated afterwards).
func (e *Engine) RegisterTemplate(p *ocr.Process) error {
	if err := p.ValidateWithTemplates(e.resolveTemplate); err != nil {
		return err
	}
	if err := e.opts.Store.Put(store.Template, p.Name, []byte(ocr.Format(p))); err != nil {
		return err
	}
	e.emu.Lock()
	e.templates[p.Name] = p.Clone()
	e.emu.Unlock()
	return nil
}

// RegisterTemplateSource parses OCR text and registers every process in
// it.
func (e *Engine) RegisterTemplateSource(src string) error {
	ps, err := ocr.ParseFile(src)
	if err != nil {
		return err
	}
	for _, p := range ps {
		if err := e.RegisterTemplate(p); err != nil {
			return err
		}
	}
	return nil
}

// Template returns a copy of a registered template.
func (e *Engine) Template(name string) (*ocr.Process, bool) {
	e.emu.RLock()
	p, ok := e.templates[name]
	e.emu.RUnlock()
	if !ok {
		return nil, false
	}
	return p.Clone(), true
}

// Templates lists registered template names, sorted.
func (e *Engine) Templates() []string {
	e.emu.RLock()
	out := make([]string, 0, len(e.templates))
	for n := range e.templates {
		out = append(out, n)
	}
	e.emu.RUnlock()
	sort.Strings(out)
	return out
}

func (e *Engine) resolveTemplate(name string) (*ocr.Process, bool) {
	e.emu.RLock()
	p, ok := e.templates[name]
	e.emu.RUnlock()
	return p, ok
}

// StartOptions tune a new instance.
type StartOptions struct {
	// Priority orders this instance's activities in the queue.
	Priority int
	// Nice makes activities yield to competing cluster load (the
	// paper's shared-cluster mode).
	Nice bool
	// Tenant is the fair-share accounting bucket this instance's
	// activities charge to ("" = the default tenant); weights come from
	// Options.Quotas.
	Tenant string
	// InstanceID, when non-empty, names the new instance instead of the
	// engine's generated p-sequence. Federated members mint IDs that
	// encode their partition; the caller guarantees global uniqueness
	// (the engine still rejects an ID already in its registry). IDs must
	// not contain '/'.
	InstanceID string
}

// checkOwned gates a mutating entry point on the ownership partition.
func (e *Engine) checkOwned(id string) error {
	if e.opts.Owns != nil && !e.opts.Owns(id) {
		return fmt.Errorf("%w: %s", ErrNotOwner, id)
	}
	return nil
}

// StartProcess instantiates a template and begins navigation. It returns
// the new instance ID.
func (e *Engine) StartProcess(template string, inputs map[string]ocr.Value, opts StartOptions) (string, error) {
	if opts.InstanceID != "" {
		if strings.ContainsRune(opts.InstanceID, '/') {
			return "", fmt.Errorf("core: instance ID %q must not contain '/'", opts.InstanceID)
		}
		if err := e.checkOwned(opts.InstanceID); err != nil {
			return "", err
		}
	}
	e.emu.Lock()
	tpl, ok := e.templates[template]
	if !ok {
		e.emu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrUnknownTemplate, template)
	}
	id := opts.InstanceID
	if id == "" {
		e.nextID++
		id = fmt.Sprintf("p%04d", e.nextID)
	} else if _, exists := e.instances[id]; exists {
		e.emu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	e.emu.Unlock()

	in := &Instance{
		ID:       id,
		Template: template,
		Priority: opts.Priority,
		Nice:     opts.Nice,
		Tenant:   opts.Tenant,
		Started:  e.now(),
	}
	in.setStatus(InstanceRunning)
	proc := tpl.Clone()
	root := &scope{
		ID:         "",
		Proc:       proc,
		ElemIndex:  -1,
		Whiteboard: make(map[string]ocr.Value),
		Tasks:      make(map[string]*taskState),
		children:   make(map[string]*scope),
		wbFull:     true, // roots have no parent to inherit from
	}
	for _, name := range proc.Inputs {
		if v, ok := inputs[name]; ok {
			root.Whiteboard[name] = v
		}
	}
	in.root = root
	in.scopes = map[string]*scope{"": root}

	mu := e.shardFor(id)
	mu.Lock()
	e.beginTurn(in)
	if err := e.initScope(in, root); err != nil {
		mu.Unlock()
		return "", err
	}
	// Publish only after initialization succeeded, so no other caller
	// ever observes a half-built instance.
	e.emu.Lock()
	if _, exists := e.instances[id]; exists {
		// Two racing starts with the same explicit ID: the loser backs
		// out before publishing anything.
		e.emu.Unlock()
		mu.Unlock()
		return "", fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	e.instances[id] = in
	e.order = append(e.order, id)
	e.emu.Unlock()
	e.emit(Event{Kind: EvInstanceStarted, Instance: id, Detail: template})
	e.persist(in)
	e.activateRoots(in, root)
	e.maybeCompleteScope(in, root)
	e.endTurn(in, mu, true)
	return id, nil
}

// initScope evaluates DATA initializers into the scope whiteboard.
func (e *Engine) initScope(in *Instance, sc *scope) error {
	env := scopeEnv{sc}
	for _, d := range sc.Proc.Data {
		if d.Init == nil {
			continue
		}
		v, err := d.Init.Eval(env)
		if err != nil {
			return fmt.Errorf("core: initializing DATA %s: %w", d.Name, err)
		}
		// DATA initializers override inherited values, so the scope's
		// dynamic record must own them.
		sc.Whiteboard[d.Name] = v
		sc.ownWB(d.Name, true)
	}
	for _, t := range sc.Proc.Tasks {
		sc.Tasks[t.Name] = &taskState{
			Name:   t.Name,
			ConnIn: make([]connState, len(sc.Proc.Incoming(t.Name))),
		}
	}
	e.touchNew(in, sc)
	return nil
}

// Instance returns a running or finished instance. The pointer is shared
// with the engine: read mutable fields only once the instance is terminal,
// or while the engine is quiescent.
func (e *Engine) Instance(id string) (*Instance, bool) {
	return e.lookup(id)
}

// InstanceState returns an instance's status and outputs, consistent under
// concurrent navigation.
func (e *Engine) InstanceState(id string) (InstanceStatus, map[string]ocr.Value, error) {
	in, ok := e.lookup(id)
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	mu := e.shardFor(id)
	mu.Lock()
	st, out := in.Status, in.Outputs
	mu.Unlock()
	return st, out, nil
}

// Instances returns every instance in creation order. The same sharing
// caveat as Instance applies.
func (e *Engine) Instances() []*Instance {
	e.emu.RLock()
	out := make([]*Instance, 0, len(e.order))
	for _, id := range e.order {
		out = append(out, e.instances[id])
	}
	e.emu.RUnlock()
	return out
}

// QueueLen reports how many activities await dispatch.
func (e *Engine) QueueLen() int {
	e.dmu.Lock()
	n := e.sched.Len()
	e.dmu.Unlock()
	return n
}

// QueueDepths reports the queue depth by tenant and by priority level —
// the monitor's view of the multi-tenant queue.
func (e *Engine) QueueDepths() (byTenant map[string]int, byPriority map[int]int) {
	e.dmu.Lock()
	byTenant = e.sched.DepthByTenant()
	byPriority = e.sched.DepthByPriority()
	e.dmu.Unlock()
	return byTenant, byPriority
}

// TenantUsage reports a tenant's accumulated fair-share charge (estimated
// seconds of dispatched work).
func (e *Engine) TenantUsage(tenant string) float64 {
	e.dmu.Lock()
	u := e.sched.Usage(tenant)
	e.dmu.Unlock()
	return u
}

// CostRatio returns the scheduler's learned actual/estimated cost ratio
// for a program key, from completed-activity durations.
func (e *Engine) CostRatio(key string) (float64, bool) {
	e.dmu.Lock()
	r, ok := e.sched.Predictor().Ratio(key)
	e.dmu.Unlock()
	return r, ok
}

// RunningJobs reports how many activities are executing on the cluster.
func (e *Engine) RunningJobs() int {
	e.dmu.Lock()
	n := len(e.running)
	e.dmu.Unlock()
	return n
}

// Suspend stops dispatching new activities of an instance. When graceful,
// running jobs finish normally (the paper's event 1: "letting ongoing jobs
// finish but not starting new ones"); otherwise they are killed and
// requeued.
func (e *Engine) Suspend(id string, graceful bool) error {
	if err := e.checkOwned(id); err != nil {
		return err
	}
	in, ok := e.lookup(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	mu := e.shardFor(id)
	mu.Lock()
	if in.Status != InstanceRunning {
		mu.Unlock()
		return fmt.Errorf("%w: instance %s is %s", ErrBadState, id, in.Status)
	}
	e.beginTurn(in)
	in.setStatus(InstanceSuspended)
	e.emit(Event{Kind: EvInstanceSuspended, Instance: id, Detail: fmt.Sprintf("graceful=%v", graceful)})
	if !graceful {
		e.killRunning(in)
	}
	e.persist(in)
	e.endTurn(in, mu, false)
	return nil
}

// Resume restarts dispatching for a suspended instance.
func (e *Engine) Resume(id string) error {
	if err := e.checkOwned(id); err != nil {
		return err
	}
	in, ok := e.lookup(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	mu := e.shardFor(id)
	mu.Lock()
	if in.Status != InstanceSuspended {
		mu.Unlock()
		return fmt.Errorf("%w: instance %s is %s", ErrBadState, id, in.Status)
	}
	e.beginTurn(in)
	if err := e.hydrateLocked(in); err != nil {
		e.endTurn(in, mu, false)
		return err
	}
	in.setStatus(InstanceRunning)
	e.emit(Event{Kind: EvInstanceResumed, Instance: id})
	e.persist(in)
	e.endTurn(in, mu, true)
	return nil
}

// Abort fails an instance on user request.
func (e *Engine) Abort(id string, reason string) error {
	if err := e.checkOwned(id); err != nil {
		return err
	}
	in, ok := e.lookup(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	mu := e.shardFor(id)
	mu.Lock()
	if in.Status == InstanceDone || in.Status == InstanceFailed {
		mu.Unlock()
		return fmt.Errorf("%w: instance %s is %s", ErrBadState, id, in.Status)
	}
	e.beginTurn(in)
	// A lazy stub must hydrate first: archive captures the full scope
	// tree, and failing a meta-only shell would strand its delta records.
	if err := e.hydrateLocked(in); err != nil {
		e.endTurn(in, mu, false)
		return err
	}
	e.failInstance(in, "aborted: "+reason)
	e.endTurn(in, mu, false)
	return nil
}

// SetParameter changes a whiteboard value of a running or suspended
// instance (§3.4: "the user can ... change input parameters during each
// step of the computation").
func (e *Engine) SetParameter(id, name string, v ocr.Value) error {
	if err := e.checkOwned(id); err != nil {
		return err
	}
	in, ok := e.lookup(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	mu := e.shardFor(id)
	mu.Lock()
	if in.Status == InstanceDone || in.Status == InstanceFailed {
		mu.Unlock()
		return fmt.Errorf("%w: instance %s is %s", ErrBadState, id, in.Status)
	}
	e.beginTurn(in)
	if err := e.hydrateLocked(in); err != nil {
		e.endTurn(in, mu, false)
		return err
	}
	e.setWB(in, in.root, name, v)
	e.persist(in)
	e.endTurn(in, mu, false)
	return nil
}

// PauseAll stops dispatching across all instances (server-level suspend,
// used during planned outages).
func (e *Engine) PauseAll() { e.paused.Store(true) }

// ResumeAll re-enables dispatching.
func (e *Engine) ResumeAll() {
	e.paused.Store(false)
	e.Pump()
}

// killRunning defers a kill for every running job of an instance; the
// completions with ErrJobKilled requeue the tasks. Caller holds the
// instance's shard; the kills fire in endTurn.
func (e *Engine) killRunning(in *Instance) {
	e.dmu.Lock()
	ids := make([]string, 0, len(e.running))
	for id, ref := range e.running {
		if ref.inst == in {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		in.pendingKills = append(in.pendingKills, pendingKill{job: id, node: e.running[id].node})
	}
	e.dmu.Unlock()
}

// dropQueued removes all queued activities of an instance.
func (e *Engine) dropQueued(in *Instance) {
	e.dmu.Lock()
	ids := make([]string, 0, len(e.queued))
	for id, ref := range e.queued {
		if ref.inst == in {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		e.sched.Remove(id)
		delete(e.queued, id)
	}
	e.dmu.Unlock()
}

// failInstance aborts everything the instance still has in flight. Caller
// holds the instance's shard.
func (e *Engine) failInstance(in *Instance, reason string) {
	if in.Status == InstanceFailed || in.Status == InstanceDone {
		return
	}
	// Reason and end time are written before the status flips, so
	// lock-free readers (Wait) never see a failed instance without them.
	in.FailureReason = reason
	in.Ended = e.now()
	in.setStatus(InstanceFailed)
	e.dropQueued(in)
	e.dropWaiting(in)
	e.killRunning(in)
	e.emit(Event{Kind: EvInstanceFailed, Instance: in.ID, Detail: reason})
	// archive snapshots the complete final state (no separate persist
	// needed); OnInstanceDone fires from endTurn after the flush commits.
	e.archive(in)
	in.pendingDone = true
}
