package core

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/ocr"
	"bioopera/internal/sched"
	"bioopera/internal/sim"
)

// oneCPUSpec is a single-slot cluster: every dispatch decision is visible
// as a strict sequence.
func oneCPUSpec() cluster.Spec {
	return cluster.Spec{Name: "one", Nodes: []cluster.NodeSpec{
		{Name: "n1", CPUs: 1, Speed: 1, OS: "linux"},
	}}
}

// TestUnplaceableJobFailsWithEvent covers the silent-starvation fix: a job
// whose node affinity names only unknown (or down) nodes must fail loudly
// instead of queueing forever.
func TestUnplaceableJobFailsWithEvent(t *testing.T) {
	lib := NewLibrary()
	if err := lib.Register(Program{
		Name: "test.pinned",
		Run: func(_ ProgramCtx, _ map[string]ocr.Value) (map[string]ocr.Value, error) {
			return map[string]ocr.Value{"out": ocr.Str("ran")}, nil
		},
		Nodes: []string{"ghost"},
	}); err != nil {
		t.Fatal(err)
	}
	var unplaceable []Event
	rt := newRuntime(t, SimConfig{Library: lib, Options: Options{
		OnEvent: func(ev Event) {
			if ev.Kind == EvTaskUnplaceable {
				unplaceable = append(unplaceable, ev)
			}
		},
	}})
	register(t, rt, `
PROCESS Pinned {
  OUTPUT result;
  ACTIVITY P {
    CALL test.pinned();
    OUT out;
    MAP out -> result;
  }
}
`)
	id := start(t, rt, "Pinned", nil)
	rt.Run()
	in, ok := rt.Engine.Instance(id)
	if !ok {
		t.Fatal("instance vanished")
	}
	if in.Status != InstanceFailed {
		t.Fatalf("instance = %s, want failed (pinned to unknown node)", in.Status)
	}
	if len(unplaceable) == 0 {
		t.Fatal("no EvTaskUnplaceable emitted")
	}
	if ev := unplaceable[0]; ev.Instance != id || ev.Task != "P" {
		t.Fatalf("event = %+v", ev)
	}
}

// TestTwoTenantStarvationFreedom runs two tenants with skewed quotas
// through a one-CPU cluster and asserts the low-quota tenant still gets
// dispatched throughout — weighted fair share, not strict priority between
// tenants.
func TestTwoTenantStarvationFreedom(t *testing.T) {
	var dispatches []string // instance ID per EvTaskDispatched, in order
	rt := newRuntime(t, SimConfig{
		Spec: oneCPUSpec(),
		Options: Options{
			Quotas: map[string]float64{"heavy": 3, "light": 1},
			OnEvent: func(ev Event) {
				if ev.Kind == EvTaskDispatched {
					dispatches = append(dispatches, ev.Instance)
				}
			},
		},
	})
	register(t, rt, parallelSrc)
	xs := make([]ocr.Value, 12)
	for i := range xs {
		xs[i] = ocr.Num(float64(i))
	}
	heavyID, err := rt.Engine.StartProcess("Par", map[string]ocr.Value{"xs": ocr.List(xs...)},
		StartOptions{Tenant: "heavy"})
	if err != nil {
		t.Fatal(err)
	}
	lightID, err := rt.Engine.StartProcess("Par", map[string]ocr.Value{"xs": ocr.List(xs[:4]...)},
		StartOptions{Tenant: "light"})
	if err != nil {
		t.Fatal(err)
	}
	rt.Run()
	finished(t, rt, heavyID)
	finished(t, rt, lightID)

	// All of heavy's 12 activities were queued before any of light's 4,
	// so legacy FIFO would dispatch light entirely after heavy. Fair share
	// must interleave: light's last dispatch comes before heavy's last.
	last := map[string]int{}
	for i, id := range dispatches {
		last[id] = i
	}
	if last[lightID] > last[heavyID] {
		t.Fatalf("light tenant starved: its last dispatch (%d) after heavy's last (%d)",
			last[lightID], last[heavyID])
	}
	// And the skew holds: among the first 8 dispatches, heavy gets about
	// its 3:1 share.
	heavyEarly := 0
	for _, id := range dispatches[:8] {
		if id == heavyID {
			heavyEarly++
		}
	}
	if heavyEarly < 5 || heavyEarly == 8 {
		t.Fatalf("heavy got %d of the first 8 dispatches, want ≈6 and not all", heavyEarly)
	}
	if u := rt.Engine.TenantUsage("heavy"); u <= rt.Engine.TenantUsage("light") {
		t.Fatalf("usage heavy=%v light=%v, want heavy charged more", u, rt.Engine.TenantUsage("light"))
	}
}

// slowLib returns a library whose work program charges long virtual time,
// so preemption lands mid-computation.
func slowLib(t *testing.T) *Library {
	t.Helper()
	lib := testLibrary(t)
	if err := lib.Register(Program{
		Name: "test.slow",
		Run: func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			return map[string]ocr.Value{"out": args["x"]}, nil
		},
		Cost: func(map[string]ocr.Value) time.Duration { return 10 * time.Minute },
	}); err != nil {
		t.Fatal(err)
	}
	return lib
}

const slowParSrc = `
PROCESS SlowPar {
  INPUT xs;
  OUTPUT echoed;
  BLOCK Fan PARALLEL OVER xs AS x {
    MAP results -> echoed;
    OUTPUT y;
    ACTIVITY S {
      CALL test.slow(x = x);
      OUT out;
      MAP out -> y;
    }
  }
}
`

// runSlowPar runs the low-priority workload, optionally preempting it with
// a high-priority arrival, and returns the low-priority instance's final
// whiteboard and outputs serialization plus the preemption count.
func runSlowPar(t *testing.T, preempt bool) (wb, outs []byte, preempted int) {
	t.Helper()
	rt := newRuntime(t, SimConfig{Spec: oneCPUSpec(), Library: slowLib(t)})
	register(t, rt, slowParSrc)
	register(t, rt, `
PROCESS Urgent {
  INPUT a, b;
  OUTPUT result;
  ACTIVITY Add {
    CALL test.add(a = a, b = b);
    OUT sum;
    MAP sum -> result;
  }
}
`)
	xs := ocr.List(ocr.Num(1), ocr.Num(2), ocr.Num(3))
	lowID, err := rt.Engine.StartProcess("SlowPar", map[string]ocr.Value{"xs": xs}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if preempt {
		// A high-priority job arrives mid-run; once it has starved past
		// the preemptor's wait, a sweep reclaims the only CPU.
		rt.Sim.At(sim.Time(5*time.Minute), func(sim.Time) {
			if _, err := rt.Engine.StartProcess("Urgent",
				map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(2)},
				StartOptions{Priority: 5}); err != nil {
				t.Error(err)
			}
		})
		rt.Sim.At(sim.Time(7*time.Minute), func(sim.Time) {
			preempted += rt.Engine.Preempt(sched.DefaultPreemptor())
		})
	}
	rt.Run()
	in := finished(t, rt, lowID)
	wbBytes, err := json.Marshal(in.root.Whiteboard)
	if err != nil {
		t.Fatal(err)
	}
	outBytes, err := json.Marshal(in.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	return wbBytes, outBytes, preempted
}

// TestPreemptResumeByteEquivalence kills a low-priority activity to make
// room for an urgent job, lets it requeue and rerun, and asserts the final
// whiteboard and outputs are byte-identical to an undisturbed run — the
// paper's claim that a killed TEU loses time, never state.
func TestPreemptResumeByteEquivalence(t *testing.T) {
	wbCtl, outCtl, _ := runSlowPar(t, false)
	wbPre, outPre, preempted := runSlowPar(t, true)
	if preempted == 0 {
		t.Fatal("preemption sweep killed nothing")
	}
	if !bytes.Equal(wbCtl, wbPre) {
		t.Fatalf("whiteboard diverged:\n control: %s\npreempted: %s", wbCtl, wbPre)
	}
	if !bytes.Equal(outCtl, outPre) {
		t.Fatalf("outputs diverged:\n control: %s\npreempted: %s", outCtl, outPre)
	}
}

// schedScenarioTrace runs a multi-tenant, preempting scenario and returns
// its full serialized event stream.
func schedScenarioTrace(t *testing.T) []byte {
	t.Helper()
	var events []Event
	rt := newRuntime(t, SimConfig{
		Spec:    oneCPUSpec(),
		Library: slowLib(t),
		Options: Options{
			Quotas:  map[string]float64{"heavy": 2, "light": 1},
			OnEvent: func(ev Event) { events = append(events, ev) },
		},
	})
	register(t, rt, slowParSrc)
	xs := ocr.List(ocr.Num(1), ocr.Num(2), ocr.Num(3), ocr.Num(4))
	if _, err := rt.Engine.StartProcess("SlowPar", map[string]ocr.Value{"xs": xs},
		StartOptions{Tenant: "heavy"}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Engine.StartProcess("SlowPar", map[string]ocr.Value{"xs": ocr.List(ocr.Num(9), ocr.Num(10))},
		StartOptions{Tenant: "light"}); err != nil {
		t.Fatal(err)
	}
	rt.Sim.At(sim.Time(5*time.Minute), func(sim.Time) {
		if _, err := rt.Engine.StartProcess("SlowPar", map[string]ocr.Value{"xs": ocr.List(ocr.Num(42))},
			StartOptions{Priority: 5, Tenant: "light"}); err != nil {
			t.Error(err)
		}
	})
	rt.Sim.Every(2*time.Minute, func(sim.Time) {
		rt.Engine.Preempt(sched.DefaultPreemptor())
	})
	rt.RunUntil(sim.Time(3 * time.Hour))
	b, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSchedulerDeterminism replays the same tenanted, preempting scenario
// twice and demands bit-identical event traces: the refactored scheduler
// must stay inside the deterministic-simulation envelope.
func TestSchedulerDeterminism(t *testing.T) {
	a := schedScenarioTrace(t)
	b := schedScenarioTrace(t)
	if !bytes.Equal(a, b) {
		t.Fatal("event traces diverged between identical runs")
	}
}
