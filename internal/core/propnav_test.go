package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sim"
)

// This file property-tests the navigator against an independent reference
// interpreter: random DAG processes with conditional connectors are run
// through the full engine (optionally under node churn) and through a
// 30-line sequential evaluator that implements the paper's navigation
// semantics directly. The two must always produce identical outputs.
//
// Generated processes are confluent by construction (each whiteboard name
// is written by exactly one task, and conditions only read names fixed
// before evaluation), so the comparison is exact regardless of scheduling.

// propProcess is a generated process plus its metadata.
type propProcess struct {
	proc  *ocr.Process
	tasks int
}

// genProcess builds a random DAG of activities. Task i computes
// out = 1 + i + Σ(args) and maps it to w<i>. Connectors carry conditions
// over the source's own output with probability ~1/2.
func genProcess(rng *rand.Rand) propProcess {
	n := 3 + rng.Intn(8)
	b := ocr.NewBuilder("Prop")
	var outs []string
	for i := 0; i < n; i++ {
		outs = append(outs, fmt.Sprintf("w%d", i))
	}
	b.Outputs(outs...)

	// Edges first: each non-root task gets incoming connectors from
	// random earlier tasks.
	preds := make([][]int, n)
	type edge struct {
		from, to int
		kind     int
	}
	var edges []edge
	for j := 1; j < n; j++ {
		count := 1 + rng.Intn(2)
		seen := map[int]bool{}
		for e := 0; e < count; e++ {
			i := rng.Intn(j)
			if seen[i] {
				continue
			}
			seen[i] = true
			preds[j] = append(preds[j], i)
			edges = append(edges, edge{from: i, to: j, kind: rng.Intn(3)})
		}
	}

	// Tasks: arguments may only reference *direct predecessors* — those
	// are guaranteed terminal (ended or dead) before activation, so the
	// whiteboard values they read are fixed. A dead predecessor's name
	// is simply undefined (null), in both the engine and the reference.
	for i := 0; i < n; i++ {
		var opts []ocr.TaskOption
		for a, src := range preds[i] {
			if rng.Intn(2) == 0 {
				continue // not every predecessor becomes an argument
			}
			opts = append(opts, ocr.Arg(fmt.Sprintf("a%d", a), fmt.Sprintf("w%d", src)))
		}
		opts = append(opts,
			ocr.Arg("self", fmt.Sprintf("%d", i)),
			ocr.Out("out"),
			ocr.MapTo("out", fmt.Sprintf("w%d", i)),
		)
		b.Activity(fmt.Sprintf("T%d", i), "prop.f", opts...)
	}
	for _, e := range edges {
		from, to := fmt.Sprintf("T%d", e.from), fmt.Sprintf("T%d", e.to)
		switch e.kind {
		case 0:
			b.Flow(from, to)
		case 1:
			// Condition over the source's mapped output — fixed
			// before the condition is evaluated.
			b.FlowIf(from, to, fmt.Sprintf("w%d %% 2 == %d", e.from, rng.Intn(2)))
		case 2:
			b.FlowIf(from, to, fmt.Sprintf("w%d > %d", e.from, rng.Intn(2*n)))
		}
	}
	p, err := b.Build()
	if err != nil {
		panic(err) // generator bug
	}
	return propProcess{proc: p, tasks: n}
}

// propFn is the pure activity function: 1 + self + Σ numeric args.
func propFn(args map[string]ocr.Value) float64 {
	sum := 1.0
	for _, v := range args {
		sum += v.AsNum()
	}
	return sum
}

// referenceRun evaluates the process sequentially with the paper's
// semantics: roots activate; a task activates when all incoming connectors
// are decided and at least one is satisfied; all-dead targets die and
// propagate.
func referenceRun(p *ocr.Process) map[string]ocr.Value {
	wb := map[string]ocr.Value{}
	type tstate uint8
	const (
		pending tstate = iota
		ended
		dead
	)
	status := map[string]tstate{}

	env := ocr.MapEnv(wb)
	var resolve func(name string)
	resolve = func(name string) {
		if _, done := status[name]; done {
			return
		}
		incoming := p.Incoming(name)
		anySat := false
		for _, c := range incoming {
			resolve(c.From)
			if status[c.From] != ended {
				continue
			}
			if c.Cond == nil {
				anySat = true
				continue
			}
			v, err := c.Cond.Eval(env)
			if err == nil && v.Truthy() {
				anySat = true
			}
		}
		if len(incoming) > 0 && !anySat {
			status[name] = dead
			return
		}
		// Execute.
		t := p.Task(name)
		args := map[string]ocr.Value{}
		for _, bnd := range t.Args {
			v, err := bnd.Expr.Eval(env)
			if err != nil {
				v = ocr.Null
			}
			args[bnd.Name] = v
		}
		out := ocr.Num(propFn(args))
		for _, m := range t.Maps {
			if m.From == "out" {
				wb[m.To] = out
			}
		}
		status[name] = ended
	}
	for _, t := range p.Tasks {
		resolve(t.Name)
	}
	outputs := map[string]ocr.Value{}
	for _, o := range p.Outputs {
		if v, ok := wb[o]; ok {
			outputs[o] = v
		} else {
			outputs[o] = ocr.Null
		}
	}
	return outputs
}

func TestNavigatorMatchesReference(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		pp := genProcess(rng)
		want := referenceRun(pp.proc)

		lib := NewLibrary()
		lib.RegisterFunc("prop.f", func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			return map[string]ocr.Value{"out": ocr.Num(propFn(args))}, nil
		})
		rt, err := NewSimRuntime(SimConfig{Seed: int64(trial + 1), Spec: testSpec(), Library: lib})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Engine.RegisterTemplate(pp.proc); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, ocr.Format(pp.proc))
		}
		id, err := rt.Engine.StartProcess("Prop", nil, StartOptions{})
		if err != nil {
			t.Fatal(err)
		}

		// Half the trials run under churn: crashes and a server
		// restart must not change navigation results.
		if trial%2 == 1 {
			rt.Sim.At(sim.Time(500*time.Millisecond), func(sim.Time) {
				rt.Cluster.CrashNode("n1")
			})
			rt.Sim.At(sim.Time(1500*time.Millisecond), func(sim.Time) {
				rt.Engine.Crash()
				rt.Engine.Recover()
			})
			rt.Sim.At(sim.Time(3*time.Second), func(sim.Time) {
				rt.Cluster.RestoreNode("n1")
			})
		}

		rt.Run()
		in, ok := rt.Engine.Instance(id)
		if !ok {
			t.Fatalf("trial %d: instance lost", trial)
		}
		if in.Status != InstanceDone {
			t.Fatalf("trial %d: %s (%s)\n%s", trial, in.Status, in.FailureReason, ocr.Format(pp.proc))
		}
		for name, wv := range want {
			gv := in.Outputs[name]
			if !gv.Equal(wv) {
				t.Fatalf("trial %d: output %s = %v, reference says %v\n%s",
					trial, name, gv, wv, ocr.Format(pp.proc))
			}
		}
	}
}
