// Package core implements the BioOpera engine — the paper's primary
// contribution (§3): a navigator that interprets OCR process graphs, a
// dispatcher that schedules activities onto cluster nodes through per-node
// program execution clients, and a recovery module that persists every
// state transition so month-long computations survive node crashes, server
// restarts, and manual suspension.
//
// The engine is internally synchronized: each instance's navigation is
// strictly serialized by an instance-sharded lock table, while independent
// instances execute and checkpoint concurrently. Cross-instance state (the
// activity queue, templates, placement) sits behind a thin synchronized
// front-end. The discrete-event simulator drives everything from a single
// goroutine, so sim runs stay deterministic; the local real-time driver
// delivers completions from worker goroutines directly.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sim"
)

// TaskStatus is the lifecycle state of one task within a scope.
type TaskStatus uint8

// Task statuses.
const (
	// TaskInactive: activation conditions not yet decided.
	TaskInactive TaskStatus = iota
	// TaskReady: activated, waiting in the activity queue.
	TaskReady
	// TaskRunning: dispatched to a node (activities) or executing a
	// child scope (blocks/subprocesses).
	TaskRunning
	// TaskEnded: finished successfully (or failure ignored).
	TaskEnded
	// TaskFailed: permanently failed (retries exhausted, no handler).
	TaskFailed
	// TaskDead: skipped by dead-path elimination (all incoming
	// connectors false).
	TaskDead
)

// String names the status.
func (s TaskStatus) String() string {
	switch s {
	case TaskInactive:
		return "inactive"
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskEnded:
		return "ended"
	case TaskFailed:
		return "failed"
	case TaskDead:
		return "dead"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Terminal reports whether no further transitions can happen.
func (s TaskStatus) Terminal() bool {
	return s == TaskEnded || s == TaskFailed || s == TaskDead
}

// InstanceStatus is the lifecycle state of a process instance.
type InstanceStatus uint8

// Instance statuses.
const (
	// InstanceRunning: navigation in progress.
	InstanceRunning InstanceStatus = iota
	// InstanceSuspended: running jobs may finish, nothing new starts.
	InstanceSuspended
	// InstanceDone: all tasks terminal, outputs mapped.
	InstanceDone
	// InstanceFailed: aborted by a task failure or by the user.
	InstanceFailed
)

// String names the status.
func (s InstanceStatus) String() string {
	switch s {
	case InstanceRunning:
		return "running"
	case InstanceSuspended:
		return "suspended"
	case InstanceDone:
		return "done"
	case InstanceFailed:
		return "failed"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// connState is the decision state of one incoming connector.
type connState uint8

const (
	connPending connState = iota
	connSatisfied
	connDead
)

// taskState is the runtime record of one task in one scope.
type taskState struct {
	Name     string
	Status   TaskStatus
	Attempts int // program-failure attempts consumed
	// Inputs are the evaluated argument bindings, fixed at activation
	// so retries are deterministic.
	Inputs map[string]ocr.Value
	// Outputs is the task's output data structure after completion.
	Outputs map[string]ocr.Value
	// ConnIn mirrors Process.Incoming(task) by index.
	ConnIn []connState
	// Node and Job identify the dispatched job (activities).
	Node string
	Job  string
	// AltOf is set when this task runs as the failure alternative of
	// another task.
	AltOf string
	// Accounting.
	ReadyAt   sim.Time
	StartedAt sim.Time
	EndedAt   sim.Time
	CPUTime   time.Duration
	// ChildWaiting counts live child scopes (blocks/subprocesses).
	ChildWaiting int
	// Results accumulates parallel-block element results by index.
	Results []ocr.Value
	// OverElems is the expanded OVER list of a parallel block, kept so
	// recovery can respawn lost element scopes.
	OverElems []ocr.Value
}

// scope is one lexical scope of a running instance: the root process, a
// block body instance, or a subprocess instance.
type scope struct {
	ID         string // unique within the instance, e.g. "" (root), "Alignment[3]", "Tree"
	Proc       *ocr.Process
	Parent     *scope
	ParentTask string // task in the parent that spawned this scope
	ElemIndex  int    // element index for parallel expansion, else -1
	Whiteboard map[string]ocr.Value
	Tasks      map[string]*taskState
	Done       bool
	children   map[string]*scope

	// Delta dirty tracking (§3.3: checkpoint granularity). The unit of
	// persistence is one record, not the whole scope: newborn marks the
	// immutable create record (written once), dirtyMeta the compact
	// dynamic record (whiteboard delta, done flag), and dirtyTasks the
	// individual task records — completing one child of an n-wide block
	// re-marshals one task, not n.
	newborn    bool                  // create + dynamic records never written
	dirtyMeta  bool                  // dynamic record needs rewriting
	dirtyTasks map[string]*taskState // task records needing rewriting

	// wbOwn tracks whiteboard keys owned by this scope's dynamic record:
	// true = the record carries an explicit value, false = the key is
	// masked from parent inheritance (the parent gained it after this
	// scope spawned). Keys absent from wbOwn re-inherit the parent's
	// value on recovery. wbFull scopes (root, subprocess bodies, legacy
	// conversions) record the complete whiteboard instead.
	wbOwn  map[string]bool
	wbFull bool

	defunct   bool   // torn down by a sphere abort; ignore its completions
	procCache string // cached OCR text of Proc
}

// ownWB marks one whiteboard key as owned by this scope's dynamic record
// (present=false masks it from inheritance instead).
func (s *scope) ownWB(key string, present bool) {
	if s.wbFull {
		return
	}
	if s.wbOwn == nil {
		s.wbOwn = make(map[string]bool, 4)
	}
	s.wbOwn[key] = present
}

// procText returns (and caches) the scope's process in OCR text form —
// the self-contained persistence format.
func (s *scope) procText() string {
	if s.procCache == "" {
		s.procCache = ocr.Format(s.Proc)
	}
	return s.procCache
}

// env implements ocr.Env over a scope: plain names read the whiteboard,
// "task.field" reads a task's outputs.
type scopeEnv struct{ s *scope }

// Lookup implements ocr.Env.
func (e scopeEnv) Lookup(name string) (ocr.Value, bool) {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			taskName, field := name[:i], name[i+1:]
			ts, ok := e.s.Tasks[taskName]
			if !ok || ts.Outputs == nil {
				return ocr.Null, false
			}
			v, ok := ts.Outputs[field]
			return v, ok
		}
	}
	v, ok := e.s.Whiteboard[name]
	return v, ok
}

// Instance is one running (or finished) process.
type Instance struct {
	ID       string
	Template string // template name (root process name)
	Status   InstanceStatus
	Priority int
	Nice     bool
	Tenant   string // fair-share accounting bucket ("" = default)
	Started  sim.Time
	Ended    sim.Time

	root   *scope
	scopes map[string]*scope

	// stub, when non-nil, marks a lazily recovered instance: only the
	// metadata record was decoded, root/scopes are empty, and the raw
	// delta records wait here until hydrateLocked replays them on the
	// first mutating touch. Guarded by the shard lock.
	stub *stubState

	// status mirrors Status atomically so the dispatcher can test
	// dispatchability without taking the instance's shard lock. Written
	// only via setStatus (under the shard lock).
	status atomic.Int32

	// pendingKills buffers Executor.Kill requests issued during
	// navigation; they run once the instance's shard lock is released,
	// because executors may deliver the kill completion synchronously
	// (which would re-enter the same shard). Guarded by the shard lock.
	pendingKills []pendingKill

	// turnStart/turnLive stamp the current navigation turn for the
	// turn-latency metric (guarded by the shard lock; unused when the
	// engine has no metrics registry).
	turnStart sim.Time
	turnLive  bool

	// Checkpoint pipeline state, guarded by the shard lock. persist
	// snapshots the dirty set into pendingCkpts; endTurn drains them to
	// the flusher after releasing the shard, so JSON marshaling and the
	// store batch never run inside the critical section.
	dirty          map[string]*scope // scopes with unpersisted changes
	pendingCkpts   []*ckpt           // snapshots awaiting flush, in seq order
	pendingDeletes []string          // instance-space keys to delete at next flush
	procRefs       map[string]bool   // process-text hashes already interned
	pendingDone    bool              // fire OnInstanceDone after this turn's flush

	// Commit gate: admits this instance's checkpoint batches strictly in
	// sequence order once they leave the shard's critical section, so a
	// later checkpoint can never overtake an earlier one. gateCond is
	// created lazily under gateMu. ckptSeq lives under gateMu (not the
	// shard) so quiesceCkpts can compare it against ckptDone while a turn
	// of another goroutine is still cutting checkpoints.
	gateMu   sync.Mutex
	gateCond *sync.Cond
	ckptSeq  uint64 // next checkpoint sequence number
	ckptDone uint64 // checkpoints committed (== seq of the next admitted)

	// Accounting (§5.2 measurements).
	Activities int           // |A|: executed activity completions
	CPU        time.Duration // CPU(Π): summed activity CPU time
	Failures   int           // infrastructure + program failures observed
	Retries    int           // re-dispatches after failures

	// Outputs are the root process outputs after completion.
	Outputs map[string]ocr.Value

	// FailureReason records why the instance failed.
	FailureReason string
}

// pendingKill is one deferred Executor.Kill request.
type pendingKill struct {
	job  string
	node string
}

// setStatus updates Status and its atomic mirror. Callers hold the
// instance's shard lock (or own the instance exclusively, as during
// construction and recovery).
func (in *Instance) setStatus(s InstanceStatus) {
	in.Status = s
	in.status.Store(int32(s))
}

// statusNow reads the status mirror without the shard lock.
func (in *Instance) statusNow() InstanceStatus { return InstanceStatus(in.status.Load()) }

// WALL returns the instance's wall-clock (virtual) duration so far or
// total.
func (in *Instance) WALL(now sim.Time) time.Duration {
	end := in.Ended
	if in.Status == InstanceRunning || in.Status == InstanceSuspended {
		end = now
	}
	return end.Sub(in.Started)
}

// Progress reports how far the instance is: terminal tasks over total
// tasks across all live scopes (§3.5: administrators are told "how far in
// their execution these processes are"). Parallel expansion grows the
// denominator as scopes appear, so progress is monotone within a scope set
// but may dip when a large block expands.
func (in *Instance) Progress() float64 {
	var done, total int
	//bioopera:allow maprange order-independent counting; Terminal is a pure predicate and nothing is emitted
	for _, sc := range in.scopes {
		if sc.defunct {
			continue
		}
		//bioopera:allow maprange order-independent counting over one scope's tasks
		for _, ts := range sc.Tasks {
			total++
			if ts.Status.Terminal() {
				done++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(done) / float64(total)
}

// CPUPerActivity returns CPU(Π)/|A| — the paper's per-activity average,
// "a rough approximation of the time needed per activity and an intuition
// about the average recovery time".
func (in *Instance) CPUPerActivity() time.Duration {
	if in.Activities == 0 {
		return 0
	}
	return in.CPU / time.Duration(in.Activities)
}

// scopePath builds the child scope ID for a task expansion.
func scopePath(parent *scope, task string, elem int) string {
	var base string
	if parent.ID == "" {
		base = task
	} else {
		base = parent.ID + "/" + task
	}
	if elem >= 0 {
		return fmt.Sprintf("%s[%d]", base, elem)
	}
	return base
}
