package core

import (
	"fmt"
	"sort"
	"time"

	"bioopera/internal/obs"
	"bioopera/internal/ocr"
	"bioopera/internal/sim"
)

// MonitorSource adapts an Engine to obs.Source, the interface behind the
// monitor HTTP server (§3.2's GUI, §3.5's administrator queries). It lives
// in core so obs never imports the engine: obs defines the DTOs, core
// fills them.
//
// Every snapshot takes the same locks ordinary engine entry points take
// (shard → dmu) and never holds a shard across Lineage, which acquires the
// shard itself.
type MonitorSource struct {
	e     *Engine
	loads func() map[string]float64
}

// NewMonitorSource wraps an engine for the monitor server.
func NewMonitorSource(e *Engine) *MonitorSource { return &MonitorSource{e: e} }

// SetLoads installs the adaptive-monitor load view shown by /api/cluster
// (e.g. SimRuntime.ReportedLoads). May be nil.
func (s *MonitorSource) SetLoads(fn func() map[string]float64) { s.loads = fn }

// secs renders a virtual timestamp as seconds for the JSON API.
func secs(t sim.Time) float64 { return time.Duration(t).Seconds() }

// inflight counts or lists the dispatcher's per-instance running and
// queued activities under dmu. The fields read from refs are either
// immutable after creation (scope ID, task name) or dmu-guarded (node).
func (e *Engine) inflight() (running, queued map[string][]obs.ActivityInfo) {
	running = make(map[string][]obs.ActivityInfo)
	queued = make(map[string][]obs.ActivityInfo)
	e.dmu.Lock()
	for _, ref := range e.running {
		running[ref.inst.ID] = append(running[ref.inst.ID], obs.ActivityInfo{
			Scope: ref.sc.ID, Task: ref.ts.Name, Status: "running", Node: ref.node,
		})
	}
	for _, ref := range e.queued {
		queued[ref.inst.ID] = append(queued[ref.inst.ID], obs.ActivityInfo{
			Scope: ref.sc.ID, Task: ref.ts.Name, Status: "queued",
		})
	}
	e.dmu.Unlock()
	for _, m := range []map[string][]obs.ActivityInfo{running, queued} {
		//bioopera:allow maprange sorting each value slice is order-independent
		for _, list := range m {
			sort.Slice(list, func(i, j int) bool {
				if list[i].Scope != list[j].Scope {
					return list[i].Scope < list[j].Scope
				}
				return list[i].Task < list[j].Task
			})
		}
	}
	return running, queued
}

// summary builds one listing row. Caller holds the instance's shard.
func summarize(in *Instance, running, queued int) obs.InstanceSummary {
	s := obs.InstanceSummary{
		ID:         in.ID,
		Template:   in.Template,
		Status:     in.Status.String(),
		Priority:   in.Priority,
		Progress:   in.Progress(),
		Running:    running,
		Queued:     queued,
		Activities: in.Activities,
		Failures:   in.Failures,
		Retries:    in.Retries,
		CPUSeconds: in.CPU.Seconds(),
		StartedSec: secs(in.Started),
		Failure:    in.FailureReason,
	}
	if in.Status == InstanceDone || in.Status == InstanceFailed {
		s.EndedSec = secs(in.Ended)
	}
	return s
}

// Instances implements obs.Source: one row per instance, creation order.
func (s *MonitorSource) Instances() []obs.InstanceSummary {
	running, queued := s.e.inflight()
	ins := s.e.Instances()
	out := make([]obs.InstanceSummary, 0, len(ins))
	for _, in := range ins {
		mu := s.e.shardFor(in.ID)
		mu.Lock()
		out = append(out, summarize(in, len(running[in.ID]), len(queued[in.ID])))
		mu.Unlock()
	}
	return out
}

// namedValues renders a value map as a sorted []NamedValue.
func namedValues(m map[string]ocr.Value) []obs.NamedValue {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]obs.NamedValue, 0, len(keys))
	for _, k := range keys {
		out = append(out, obs.NamedValue{Name: k, Value: m[k].String()})
	}
	return out
}

// Instance implements obs.Source: the full drill-down view of one
// instance — scope whiteboards, task states, in-flight activities, and the
// provenance graph.
func (s *MonitorSource) Instance(id string) (*obs.InstanceDetail, error) {
	in, ok := s.e.lookup(id)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	// Lineage takes the shard lock itself, so fetch it before entering
	// our own critical section (the shard mutex is not reentrant).
	lg, err := s.e.Lineage(id)
	if err != nil {
		return nil, err
	}
	running, queued := s.e.inflight()

	mu := s.e.shardFor(id)
	mu.Lock()
	det := &obs.InstanceDetail{
		InstanceSummary: summarize(in, len(running[id]), len(queued[id])),
		Outputs:         namedValues(in.Outputs),
		RunningTasks:    running[id],
		QueuedTasks:     queued[id],
	}
	scopeIDs := make([]string, 0, len(in.scopes))
	for sid := range in.scopes {
		scopeIDs = append(scopeIDs, sid)
	}
	sort.Strings(scopeIDs)
	for _, sid := range scopeIDs {
		sc := in.scopes[sid]
		if sc.defunct {
			continue
		}
		info := obs.ScopeInfo{
			ID:     sc.ID,
			Proc:   sc.Proc.Name,
			Done:   sc.Done,
			Values: namedValues(sc.Whiteboard),
		}
		// Declaration order keeps the task list stable across snapshots.
		for _, t := range sc.Proc.Tasks {
			ts := sc.Tasks[t.Name]
			if ts == nil || ts.Status == TaskInactive {
				continue
			}
			info.Tasks = append(info.Tasks, obs.ActivityInfo{
				Scope:    sc.ID,
				Task:     ts.Name,
				Status:   ts.Status.String(),
				Node:     ts.Node,
				Attempts: ts.Attempts,
				Seconds:  ts.CPUTime.Seconds(),
			})
		}
		det.Scopes = append(det.Scopes, info)
	}
	mu.Unlock()

	items := make([]string, 0, len(lg.Items))
	for item := range lg.Items {
		items = append(items, item)
	}
	sort.Strings(items)
	for _, item := range items {
		n := lg.Items[item]
		consumers := append([]string(nil), n.Consumers...)
		sort.Strings(consumers)
		det.Lineage = append(det.Lineage, obs.LineageItem{
			Item: n.Item, Producer: n.Producer, Consumers: consumers,
		})
	}
	tasks := make([]string, 0, len(lg.Programs))
	for t := range lg.Programs {
		tasks = append(tasks, t)
	}
	sort.Strings(tasks)
	for _, t := range tasks {
		det.Programs = append(det.Programs, obs.NamedValue{Name: t, Value: lg.Programs[t]})
	}
	return det, nil
}

// Cluster implements obs.Source: the executor's placement view plus the
// dispatcher's depth.
func (s *MonitorSource) Cluster() obs.ClusterInfo {
	info := obs.ClusterInfo{
		RunningJobs: s.e.RunningJobs(),
		QueueDepth:  s.e.QueueLen(),
	}
	for _, v := range s.e.opts.Executor.Nodes() {
		info.Nodes = append(info.Nodes, obs.NodeInfo{
			Name: v.Name, OS: v.OS, Up: v.Up, CPUs: v.CPUs,
			Speed: v.Speed, Running: v.Running, ExtLoad: v.ExtLoad,
		})
		if v.Up {
			info.TotalCPUs += v.CPUs
		}
		info.BusySlots += v.Running
	}
	if s.loads != nil {
		if loads := s.loads(); len(loads) > 0 {
			info.Loads = loads
		}
	}
	return info
}

// WhatIf implements obs.Source: the §3.5 outage query, converted to wire
// form.
func (s *MonitorSource) WhatIf(nodes []string) obs.OutageReport {
	impact := s.e.WhatIf(nodes)
	rep := obs.OutageReport{
		Nodes:         impact.Nodes,
		RemainingCPUs: impact.RemainingCPUs,
	}
	conv := func(js []JobImpact) []obs.JobInfo {
		out := make([]obs.JobInfo, 0, len(js))
		for _, j := range js {
			out = append(out, obs.JobInfo{
				Job: j.Job, Instance: j.Instance, Scope: j.Scope,
				Task: j.Task, Node: j.Node, State: j.Progress,
			})
		}
		return out
	}
	rep.Jobs = conv(impact.Jobs)
	rep.Stranded = conv(impact.Stranded)
	for _, id := range impact.Instances {
		rep.Instances = append(rep.Instances, obs.InstanceImpact{
			ID:       id,
			Progress: impact.Progress[id],
			Priority: impact.Priority[id],
		})
	}
	return rep
}
