package core

import (
	"sort"
	"strconv"
	"time"

	"bioopera/internal/obs"
)

// engineMetrics holds pre-resolved metric handles so the instrumented hot
// paths (emit, navigation turns) touch only atomics — no registry lookup,
// no lock, no allocation. A nil *engineMetrics disables everything behind
// a single pointer check; every method is safe on a nil receiver.
type engineMetrics struct {
	events      map[EventKind]*obs.Counter
	otherEvents *obs.Counter
	turnSeconds *obs.Histogram
	shardTurns  []*obs.Counter

	// Checkpoint pipeline instrumentation (all updated outside the shard
	// critical section, by flushCkpt).
	ckpts       *obs.Counter
	ckptMarshal *obs.Histogram
	ckptBytes   *obs.Counter
	ckptRecords *obs.Counter
	ckptFenced  *obs.Counter

	// Scheduler instrumentation. Decision latency reads zero under the sim
	// clock (virtual time does not advance mid-drain), keeping sim runs
	// deterministic.
	schedDecide *obs.Histogram
	preemptions *obs.Counter

	// Segment GC instrumentation (updated by SweepProcs, off the hot path).
	procGC *obs.Counter
}

// allEventKinds enumerates the kinds that get a pre-registered counter, so
// the emit path never takes the vec's slow path.
var allEventKinds = []EventKind{
	EvInstanceStarted, EvInstanceDone, EvInstanceFailed, EvInstanceSuspended,
	EvInstanceResumed, EvTaskReady, EvTaskDispatched, EvTaskEnded,
	EvTaskFailed, EvTaskRetried, EvTaskTimeout, EvTaskDead,
	EvServerRecovered, EvSphereAborted, EvUndoRun, EvUndoFailed,
	EvTaskAwaiting, EvSignal, EvPersistError, EvNodeJoined, EvNodeDown,
	EvTaskUnplaceable,
}

// newEngineMetrics registers the engine's instrumentation: event counters
// by kind, per-shard navigation turn counts, turn latency, and the
// dispatcher gauges (sampled at scrape time, so they cost nothing on the
// hot path).
func newEngineMetrics(reg *obs.Registry, e *Engine) *engineMetrics {
	m := &engineMetrics{events: make(map[EventKind]*obs.Counter, len(allEventKinds))}
	vec := reg.CounterVec("bioopera_engine_events_total", "Engine events by kind.", "kind")
	for _, k := range allEventKinds {
		m.events[k] = vec.With(string(k))
	}
	m.otherEvents = vec.With("other")
	m.turnSeconds = reg.Histogram("bioopera_engine_turn_seconds",
		"Navigation turn latency: time an instance's shard lock is held per turn.", nil)
	turns := reg.CounterVec("bioopera_engine_turns_total", "Navigation turns by lock shard.", "shard")
	m.shardTurns = make([]*obs.Counter, len(e.shards))
	for i := range e.shards {
		m.shardTurns[i] = turns.With(strconv.Itoa(i))
	}
	m.ckpts = reg.Counter("bioopera_checkpoints_total",
		"Checkpoint batches committed (including archives).")
	m.ckptMarshal = reg.Histogram("bioopera_checkpoint_marshal_seconds",
		"Time spent marshaling one checkpoint's records, outside the shard lock.", nil)
	m.ckptBytes = reg.Counter("bioopera_checkpoint_bytes_total",
		"Serialized checkpoint record bytes written.")
	m.ckptRecords = reg.Counter("bioopera_checkpoint_records_total",
		"Individual records written across checkpoint batches.")
	m.ckptFenced = reg.Counter("bioopera_checkpoints_fenced_total",
		"Checkpoint batches dropped by the ownership write fence.")
	m.schedDecide = reg.Histogram("bioopera_sched_decide_seconds",
		"Scheduler decision latency per dispatched (or declined) drain step.", nil)
	m.preemptions = reg.Counter("bioopera_sched_preemptions_total",
		"Running jobs killed to reclaim nodes for starving higher-priority work.")
	m.procGC = reg.Counter("bioopera_proc_gc_total",
		"Dead interned process-text records deleted by SweepProcs.")
	reg.GaugeFunc("bioopera_engine_queue_depth",
		"Activities awaiting dispatch.",
		func() float64 { return float64(e.QueueLen()) })
	// Per-tenant and per-priority queue depth. Label sets must be fixed at
	// registration, so tenants come from the configured quota map (plus the
	// default bucket) and priorities cover the engine's practical range.
	tenants := make([]string, 0, len(e.opts.Quotas)+1)
	tenants = append(tenants, "")
	for t := range e.opts.Quotas {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		t := t
		label := t
		if label == "" {
			label = "default"
		}
		reg.GaugeFuncWith("bioopera_sched_queue_depth_tenant",
			"Activities awaiting dispatch, by tenant.", "tenant", label,
			func() float64 {
				byTenant, _ := e.QueueDepths()
				return float64(byTenant[t])
			})
	}
	for p := 0; p <= 7; p++ {
		p := p
		reg.GaugeFuncWith("bioopera_sched_queue_depth_priority",
			"Activities awaiting dispatch, by priority level.", "priority", strconv.Itoa(p),
			func() float64 {
				_, byPrio := e.QueueDepths()
				return float64(byPrio[p])
			})
	}
	reg.GaugeFunc("bioopera_engine_running_jobs",
		"Activities executing on the cluster.",
		func() float64 { return float64(e.RunningJobs()) })
	reg.GaugeFunc("bioopera_engine_instances",
		"Instances in the registry (all statuses).",
		func() float64 {
			e.emu.RLock()
			n := len(e.order)
			e.emu.RUnlock()
			return float64(n)
		})
	return m
}

// event counts one emitted engine event by kind. The kind map is immutable
// after construction, so the lookup is safe from any goroutine.
func (m *engineMetrics) event(k EventKind) {
	if m == nil {
		return
	}
	if c, ok := m.events[k]; ok {
		c.Inc()
		return
	}
	m.otherEvents.Inc()
}

// turn records one completed navigation turn on the given shard.
func (m *engineMetrics) turn(shard int, d time.Duration) {
	if m == nil {
		return
	}
	m.shardTurns[shard].Inc()
	m.turnSeconds.Observe(d.Seconds())
}

// checkpoint records one flushed checkpoint batch: marshal latency, bytes
// and record count. Under the sim clock the marshal duration reads zero
// (virtual time does not advance mid-flush), keeping sim runs deterministic.
func (m *engineMetrics) checkpoint(marshal time.Duration, bytes, records int) {
	if m == nil {
		return
	}
	m.ckpts.Inc()
	m.ckptMarshal.Observe(marshal.Seconds())
	m.ckptBytes.Add(uint64(bytes))
	m.ckptRecords.Add(uint64(records))
}

// fenced counts one checkpoint batch dropped by the ownership write fence.
func (m *engineMetrics) fenced() {
	if m == nil {
		return
	}
	m.ckptFenced.Inc()
}

// decision records one scheduler drain step's decision latency.
func (m *engineMetrics) decision(d time.Duration) {
	if m == nil {
		return
	}
	m.schedDecide.Observe(d.Seconds())
}

// procSwept counts interned texts deleted by one GC sweep.
func (m *engineMetrics) procSwept(n int) {
	if m == nil || n == 0 {
		return
	}
	m.procGC.Add(uint64(n))
}

// preempted counts jobs killed by one preemption round.
func (m *engineMetrics) preempted(n int) {
	if m == nil || n == 0 {
		return
	}
	m.preemptions.Add(uint64(n))
}

// beginTurn stamps the start of a navigation turn; endTurn observes the
// latency. Caller holds the instance's shard. Under the sim clock a turn
// is instantaneous in virtual time, so simulated histograms read zero —
// deterministic by construction; real runtimes see real lock-hold times.
func (e *Engine) beginTurn(in *Instance) {
	if e.metrics != nil {
		in.turnStart = e.now()
		in.turnLive = true
	}
}
