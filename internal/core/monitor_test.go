// Endpoint tests for the monitor server against both runtimes: the sim
// runtime gives deterministic virtual timestamps (so the drill-down view
// can be pinned byte-for-byte against a golden file), the local runtime
// proves the same wiring works when activities really execute.
//bioopera:allow walltime file-wide: HTTP round-trips and the local runtime run in real time

package core

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bioopera/internal/obs"
	"bioopera/internal/ocr"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// getJSON fetches url, asserts the status code, and decodes into out.
func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d, want %d\n%s", url, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", url, err)
		}
	}
}

// instancesResp mirrors the /api/instances envelope.
type instancesResp struct {
	Instances []obs.InstanceSummary `json:"instances"`
}

// eventsResp mirrors the /api/events envelope.
type eventsResp struct {
	Events  []obs.RingEvent `json:"events"`
	Next    uint64          `json:"next"`
	Dropped uint64          `json:"dropped"`
}

// monitorEndpoints drives every endpoint of a started monitor server and
// returns the finished instance's listing row. Shared by the sim and
// local variants; node names and CPU totals differ per executor.
func monitorEndpoints(t *testing.T, base, id string) obs.InstanceSummary {
	t.Helper()

	var list instancesResp
	getJSON(t, base+"/api/instances", http.StatusOK, &list)
	if len(list.Instances) != 1 {
		t.Fatalf("instances = %+v, want exactly one", list.Instances)
	}
	row := list.Instances[0]
	if row.ID != id || row.Status != "done" || row.Template != "Linear" {
		t.Fatalf("listing row = %+v", row)
	}
	if row.Progress != 1 || row.Activities != 2 || row.Running != 0 || row.Queued != 0 {
		t.Fatalf("listing accounting = %+v", row)
	}

	var det obs.InstanceDetail
	getJSON(t, base+"/api/instances/"+id, http.StatusOK, &det)
	if det.ID != id || len(det.Scopes) != 1 {
		t.Fatalf("detail = %+v", det)
	}
	root := det.Scopes[0]
	if root.ID != "" || root.Proc != "Linear" || !root.Done || len(root.Tasks) != 2 {
		t.Fatalf("root scope = %+v", root)
	}
	for _, ts := range root.Tasks {
		if ts.Status != "ended" || ts.Node == "" {
			t.Fatalf("task = %+v, want ended on a named node", ts)
		}
	}
	var result string
	for _, nv := range det.Outputs {
		if nv.Name == "result" {
			result = nv.Value
		}
	}
	if result != "14" {
		t.Fatalf("outputs = %+v, want result 14", det.Outputs)
	}
	if len(det.Lineage) == 0 || len(det.Programs) != 2 {
		t.Fatalf("provenance: lineage=%+v programs=%+v", det.Lineage, det.Programs)
	}

	// Unknown instance: JSON error with a 404.
	var apiErr map[string]string
	getJSON(t, base+"/api/instances/ghost", http.StatusNotFound, &apiErr)
	if apiErr["error"] == "" {
		t.Fatalf("404 body = %+v, want an error field", apiErr)
	}

	// What-if without a node is a usage error.
	getJSON(t, base+"/api/whatif", http.StatusBadRequest, &apiErr)

	// The run is over, so the ring holds the full event trail.
	var evs eventsResp
	getJSON(t, base+"/api/events?waitMs=0", http.StatusOK, &evs)
	if len(evs.Events) == 0 || evs.Dropped != 0 {
		t.Fatalf("events = %d dropped = %d", len(evs.Events), evs.Dropped)
	}
	if evs.Next != evs.Events[len(evs.Events)-1].Seq {
		t.Fatalf("next = %d, want tail seq %d", evs.Next, evs.Events[len(evs.Events)-1].Seq)
	}
	kinds := make(map[string]bool)
	for _, ev := range evs.Events {
		var rec struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(ev.Data, &rec); err != nil {
			t.Fatalf("event %d is not JSON: %v", ev.Seq, err)
		}
		kinds[rec.Kind] = true
	}
	for _, want := range []string{"instance-started", "task-dispatched", "task-ended", "instance-done"} {
		if !kinds[want] {
			t.Fatalf("event ring missing %q: %v", want, kinds)
		}
	}
	// Resuming past the tail returns an empty batch, not a hang.
	getJSON(t, base+"/api/events?waitMs=0&after="+ /* tail */ "999999", http.StatusOK, &evs)
	if len(evs.Events) != 0 {
		t.Fatalf("tail resume returned %d events", len(evs.Events))
	}
	return row
}

// metricsBody scrapes /metrics and asserts the exposition contains every
// wanted series prefix.
func metricsBody(t *testing.T, base string, want []string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range want {
		if !strings.Contains(string(body), w) {
			t.Fatalf("metrics missing %q:\n%s", w, body)
		}
	}
	return string(body)
}

func TestMonitorEndpointsSim(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewRing(256)
	rt := newRuntime(t, SimConfig{Options: Options{Metrics: reg, EventRing: ring}})
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(3), "b": ocr.Num(4)})
	rt.Run()
	finished(t, rt, id)

	src := NewMonitorSource(rt.Engine)
	src.SetLoads(rt.ReportedLoads)
	srv := obs.NewServer(obs.ServerConfig{Source: src, Registry: reg, Events: ring})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	monitorEndpoints(t, ts.URL, id)

	// The listing row's timestamps are virtual, so the whole drill-down
	// is byte-stable: pin it against the golden file.
	resp, err := http.Get(ts.URL + "/api/instances/" + id)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "monitor_detail.json")
	if *updateGolden {
		if err := os.WriteFile(golden, body, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(body) != string(want) {
		t.Fatalf("detail JSON drifted from golden:\ngot:\n%s\nwant:\n%s", body, want)
	}

	var ci obs.ClusterInfo
	getJSON(t, ts.URL+"/api/cluster", http.StatusOK, &ci)
	if len(ci.Nodes) != 2 || ci.TotalCPUs != 4 || ci.BusySlots != 0 || ci.RunningJobs != 0 || ci.QueueDepth != 0 {
		t.Fatalf("cluster = %+v", ci)
	}

	var rep obs.OutageReport
	getJSON(t, ts.URL+"/api/whatif?node=n1", http.StatusOK, &rep)
	if len(rep.Nodes) != 1 || rep.Nodes[0] != "n1" || rep.RemainingCPUs != 2 {
		t.Fatalf("whatif = %+v", rep)
	}
	if len(rep.Jobs) != 0 || len(rep.Instances) != 0 {
		t.Fatalf("whatif after the run reported work: %+v", rep)
	}

	metricsBody(t, ts.URL, []string{
		`bioopera_engine_events_total{kind="instance-done"} 1`,
		`bioopera_engine_events_total{kind="task-ended"} 2`,
		"bioopera_engine_turn_seconds_count",
		"bioopera_engine_queue_depth 0",
	})
}

func TestMonitorEndpointsLocal(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewRing(256)
	rt, err := NewLocalRuntime(LocalConfig{
		Workers: 2, Library: testLibrary(t), Metrics: reg, EventRing: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	if err := rt.RegisterTemplateSource(linearSrc); err != nil {
		t.Fatal(err)
	}
	id, err := rt.StartProcess("Linear", map[string]ocr.Value{"a": ocr.Num(3), "b": ocr.Num(4)}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Wait(id, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Exercise the real listener path the CLI uses, not just the handler.
	srv := obs.NewServer(obs.ServerConfig{
		Source:   NewMonitorSource(rt.Engine()),
		Registry: reg,
		Events:   ring,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	row := monitorEndpoints(t, base, id)
	if row.CPUSeconds <= 0 {
		t.Fatalf("local run charged no CPU time: %+v", row)
	}

	var ci obs.ClusterInfo
	getJSON(t, base+"/api/cluster", http.StatusOK, &ci)
	if len(ci.Nodes) != 2 || ci.TotalCPUs != 2 || ci.BusySlots != 0 {
		t.Fatalf("cluster = %+v", ci)
	}
	for _, n := range ci.Nodes {
		if !strings.HasPrefix(n.Name, "local-") || !n.Up || n.CPUs != 1 {
			t.Fatalf("node = %+v", n)
		}
	}

	var rep obs.OutageReport
	getJSON(t, base+"/api/whatif?node="+ci.Nodes[0].Name, http.StatusOK, &rep)
	if rep.RemainingCPUs != 1 {
		t.Fatalf("whatif = %+v", rep)
	}

	metricsBody(t, base, []string{
		"bioopera_local_slots_total 2",
		"bioopera_local_slots_busy 0",
		`bioopera_engine_events_total{kind="instance-done"} 1`,
	})
}
