package core

import (
	"fmt"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sched"
)

// This file is the navigator (§3.2): it interprets the process graph,
// evaluates activation conditions, performs whiteboard data mapping,
// expands parallel tasks at runtime and late-binds subprocesses.

// altTargets returns the task names used as failure alternatives in a
// process; they are excluded from root auto-start.
func altTargets(p *ocr.Process) map[string]bool {
	alts := make(map[string]bool)
	for _, t := range p.Tasks {
		if t.OnFail == ocr.FailAlternative && t.AltTask != "" {
			alts[t.AltTask] = true
		}
	}
	return alts
}

// activateRoots activates every task with no incoming connectors (except
// failure alternatives, which only run when invoked).
func (e *Engine) activateRoots(in *Instance, sc *scope) {
	alts := altTargets(sc.Proc)
	for _, t := range sc.Proc.Roots() {
		if alts[t.Name] {
			continue
		}
		e.activateTask(in, sc, t)
	}
}

// activateTask moves a task from inactive to ready/running.
func (e *Engine) activateTask(in *Instance, sc *scope, t *ocr.Task) {
	ts := sc.Tasks[t.Name]
	if ts.Status != TaskInactive {
		return
	}
	// Evaluate argument bindings once; retries reuse them.
	env := scopeEnv{sc}
	args := make(map[string]ocr.Value, len(t.Args))
	for _, b := range t.Args {
		v, err := b.Expr.Eval(env)
		if err != nil {
			e.failInstance(in, fmt.Sprintf("evaluating argument %s of task %s: %v", b.Name, t.Name, err))
			return
		}
		args[b.Name] = v
	}
	ts.Inputs = args
	ts.ReadyAt = e.now()
	e.touchTask(in, sc, ts)

	switch t.Kind {
	case ocr.KindActivity:
		if t.Await != "" {
			e.awaitEvent(in, sc, t, ts)
			return
		}
		e.enqueueActivity(in, sc, t, ts)
	case ocr.KindBlock:
		ts.Status = TaskRunning
		e.spawnBlock(in, sc, t, ts)
	case ocr.KindSubprocess:
		ts.Status = TaskRunning
		e.spawnSubprocess(in, sc, t, ts)
	}
}

// jobID builds the queue/cluster identifier of one dispatch attempt.
func jobID(in *Instance, sc *scope, task string, attempt int) string {
	return fmt.Sprintf("%s|%s|%s|%d", in.ID, sc.ID, task, attempt)
}

// enqueueActivity places an activity in the activity queue.
func (e *Engine) enqueueActivity(in *Instance, sc *scope, t *ocr.Task, ts *taskState) {
	prog, ok := e.opts.Library.Lookup(t.Program)
	if !ok {
		e.failInstance(in, fmt.Sprintf("task %s calls unregistered program %q", t.Name, t.Program))
		return
	}
	cost := DefaultActivityCost
	switch {
	case prog.Cost != nil:
		cost = prog.Cost(ts.Inputs)
	case t.Cost > 0:
		cost = time.Duration(t.Cost * float64(time.Second))
	}
	ts.Status = TaskReady
	id := jobID(in, sc, t.Name, ts.Attempts)
	ts.Job = id
	job := sched.Job{
		ID:       id,
		Cost:     cost,
		Priority: in.Priority + t.Priority,
		OS:       prog.OS,
		Nodes:    prog.Nodes,
		Tenant:   in.Tenant,
		Key:      t.Program,
		Enqueued: e.now(),
	}
	e.dmu.Lock()
	e.sched.Enqueue(job)
	e.queued[id] = &queuedRef{inst: in, sc: sc, ts: ts, job: job}
	e.dmu.Unlock()
	e.touchTask(in, sc, ts)
	e.emit(Event{Kind: EvTaskReady, Instance: in.ID, Scope: sc.ID, Task: t.Name})
}

// spawnBlock creates the child scope(s) of a block task.
func (e *Engine) spawnBlock(in *Instance, sc *scope, t *ocr.Task, ts *taskState) {
	if !t.Parallel {
		child := e.newScope(in, sc, t.Name, -1, t.Body)
		copyWhiteboard(child, sc)
		ts.ChildWaiting = 1
		e.touchTask(in, sc, ts)
		e.startScope(in, child)
		return
	}
	over, err := t.Over.Eval(scopeEnv{sc})
	if err != nil {
		e.failInstance(in, fmt.Sprintf("evaluating OVER of block %s: %v", t.Name, err))
		return
	}
	if over.Kind() != ocr.KindList {
		e.failInstance(in, fmt.Sprintf("OVER of block %s is %s, want list", t.Name, over.Kind()))
		return
	}
	n := over.Len()
	if n == 0 {
		// Degenerate parallel task: complete with an empty result
		// list.
		e.finishTask(in, sc, t, ts, map[string]ocr.Value{"results": ocr.List()})
		return
	}
	ts.ChildWaiting = n
	ts.Results = make([]ocr.Value, n)
	ts.OverElems = over.AsList()
	e.touchTask(in, sc, ts)
	// Create all scopes first (deterministic IDs), then start them:
	// starting may complete children synchronously for empty bodies.
	children := make([]*scope, n)
	for i := 0; i < n; i++ {
		child := e.newScope(in, sc, t.Name, i, t.Body)
		copyWhiteboard(child, sc)
		child.Whiteboard[t.As] = over.At(i)
		child.ownWB(t.As, true)
		children[i] = child
	}
	for _, child := range children {
		e.startScope(in, child)
	}
}

// spawnSubprocess late-binds the referenced template and starts it as a
// child scope.
func (e *Engine) spawnSubprocess(in *Instance, sc *scope, t *ocr.Task, ts *taskState) {
	tpl, ok := e.resolveTemplate(t.Uses)
	if !ok {
		e.failInstance(in, fmt.Sprintf("subprocess %s references unknown template %q", t.Name, t.Uses))
		return
	}
	child := e.newScope(in, sc, t.Name, -1, tpl.Clone())
	// Subprocess bodies see only their inputs — no parent inheritance —
	// so their dynamic record carries the complete whiteboard.
	child.wbFull = true
	for _, name := range child.Proc.Inputs {
		if v, ok := ts.Inputs[name]; ok {
			child.Whiteboard[name] = v
		}
	}
	ts.ChildWaiting = 1
	e.touchTask(in, sc, ts)
	e.startScope(in, child)
}

// newScope allocates and registers a child scope.
func (e *Engine) newScope(in *Instance, parent *scope, task string, elem int, proc *ocr.Process) *scope {
	child := &scope{
		ID:         scopePath(parent, task, elem),
		Proc:       proc,
		Parent:     parent,
		ParentTask: task,
		ElemIndex:  elem,
		Whiteboard: make(map[string]ocr.Value),
		Tasks:      make(map[string]*taskState),
		children:   make(map[string]*scope),
	}
	parent.children[child.ID] = child
	in.scopes[child.ID] = child
	return child
}

// copyWhiteboard gives a block body a snapshot of the parent scope's data
// area (blocks inherit the whiteboard; §3.1).
func copyWhiteboard(child, parent *scope) {
	for k, v := range parent.Whiteboard {
		child.Whiteboard[k] = v
	}
}

// startScope initializes and begins navigating a child scope.
func (e *Engine) startScope(in *Instance, child *scope) {
	if err := e.initScope(in, child); err != nil {
		e.failInstance(in, err.Error())
		return
	}
	e.activateRoots(in, child)
	e.maybeCompleteScope(in, child)
}

// finishTask records a successful completion, runs the mapping phase, and
// propagates control flow.
func (e *Engine) finishTask(in *Instance, sc *scope, t *ocr.Task, ts *taskState, outputs map[string]ocr.Value) {
	if outputs == nil {
		outputs = map[string]ocr.Value{}
	}
	// Declared outputs always exist (null when the program omitted
	// them) so downstream bindings never dangle.
	for _, f := range t.OutputFields() {
		if _, ok := outputs[f]; !ok {
			outputs[f] = ocr.Null
		}
	}
	ts.Outputs = outputs
	ts.Status = TaskEnded
	ts.EndedAt = e.now()
	// Mapping phase: transfer output structure entries to the
	// whiteboard (§3.1).
	for _, m := range t.Maps {
		v, ok := outputs[m.From]
		if !ok {
			v = ocr.Null
		}
		e.setWB(in, sc, m.To, v)
	}
	e.touchTask(in, sc, ts)
	e.emit(Event{Kind: EvTaskEnded, Instance: in.ID, Scope: sc.ID, Task: t.Name, Node: ts.Node})
	e.persist(in)

	// An alternative execution also completes the task it replaced.
	if ts.AltOf != "" {
		orig := sc.Tasks[ts.AltOf]
		origTask := sc.Proc.Task(ts.AltOf)
		if orig != nil && origTask != nil && !orig.Status.Terminal() {
			e.finishTask(in, sc, origTask, orig, outputs)
		}
	}

	e.propagate(in, sc, t, ts)
	e.maybeCompleteScope(in, sc)
}

// propagate decides the outgoing connectors of a finished (or dead) task
// and activates / kills downstream tasks.
func (e *Engine) propagate(in *Instance, sc *scope, t *ocr.Task, ts *taskState) {
	env := scopeEnv{sc}
	for _, c := range sc.Proc.Outgoing(t.Name) {
		state := connDead
		if ts.Status == TaskEnded {
			if c.Cond == nil {
				state = connSatisfied
			} else {
				v, err := c.Cond.Eval(env)
				if err != nil {
					e.failInstance(in, fmt.Sprintf("evaluating condition on %s -> %s: %v", c.From, c.To, err))
					return
				}
				if v.Truthy() {
					state = connSatisfied
				}
			}
		}
		e.deliverConnector(in, sc, c, state)
		if in.Status == InstanceFailed {
			return
		}
	}
}

// deliverConnector records one incoming-connector decision on the target
// and checks whether the target can now activate or die.
func (e *Engine) deliverConnector(in *Instance, sc *scope, c ocr.Connector, state connState) {
	target := sc.Tasks[c.To]
	incoming := sc.Proc.Incoming(c.To)
	// Find the matching pending slot for this connector (same source,
	// first undecided).
	for i, ic := range incoming {
		if ic.From == c.From && ic.To == c.To && target.ConnIn[i] == connPending &&
			exprEqual(ic.Cond, c.Cond) {
			// ConnIn is derived state: recovery re-propagates terminal
			// tasks' connectors, so no record is dirtied here.
			target.ConnIn[i] = state
			break
		}
	}
	if target.Status != TaskInactive {
		return
	}
	anySatisfied := false
	for _, st := range target.ConnIn {
		switch st {
		case connPending:
			return // not decided yet
		case connSatisfied:
			anySatisfied = true
		}
	}
	if anySatisfied {
		e.activateTask(in, sc, sc.Proc.Task(c.To))
		return
	}
	e.markDead(in, sc, sc.Proc.Task(c.To))
}

// exprEqual compares condition expressions structurally (by printed form).
func exprEqual(a, b ocr.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	return a.String() == b.String()
}

// markDead kills a task via dead-path elimination and propagates.
func (e *Engine) markDead(in *Instance, sc *scope, t *ocr.Task) {
	ts := sc.Tasks[t.Name]
	if ts.Status.Terminal() {
		return
	}
	ts.Status = TaskDead
	ts.EndedAt = e.now()
	e.touchTask(in, sc, ts)
	e.emit(Event{Kind: EvTaskDead, Instance: in.ID, Scope: sc.ID, Task: t.Name})
	e.propagate(in, sc, t, ts)
	e.maybeCompleteScope(in, sc)
}

// unfinished reports whether the scope still has work. Alternative tasks
// that were never invoked do not block completion.
func unfinished(sc *scope) bool {
	alts := altTargets(sc.Proc)
	for _, t := range sc.Proc.Tasks {
		ts := sc.Tasks[t.Name]
		if ts.Status.Terminal() {
			continue
		}
		if alts[t.Name] && ts.Status == TaskInactive && len(sc.Proc.Incoming(t.Name)) == 0 {
			continue // standby alternative, never triggered
		}
		return true
	}
	return false
}

// maybeCompleteScope finishes a scope whose tasks are all terminal and
// delivers its results to the parent task or completes the instance.
func (e *Engine) maybeCompleteScope(in *Instance, sc *scope) {
	if sc.Done || in.Status == InstanceFailed || unfinished(sc) {
		return
	}
	sc.Done = true
	e.touchMeta(in, sc)

	if sc.Parent == nil {
		// Root scope: the instance is done. Outputs and end time are
		// written before the status flips — lock-free readers (Wait)
		// observe the terminal status only after the results exist.
		in.Ended = e.now()
		in.Outputs = make(map[string]ocr.Value, len(sc.Proc.Outputs))
		for _, o := range sc.Proc.Outputs {
			if v, ok := sc.Whiteboard[o]; ok {
				in.Outputs[o] = v
			} else {
				in.Outputs[o] = ocr.Null
			}
		}
		in.setStatus(InstanceDone)
		e.emit(Event{Kind: EvInstanceDone, Instance: in.ID})
		// archive snapshots the complete final state; OnInstanceDone
		// fires from endTurn after the flush commits.
		e.archive(in)
		in.pendingDone = true
		return
	}

	parent := sc.Parent
	pt := parent.Proc.Task(sc.ParentTask)
	pts := parent.Tasks[sc.ParentTask]
	switch pt.Kind {
	case ocr.KindBlock:
		if pt.Parallel {
			// Results and ChildWaiting are derived state (recovery
			// recomputes them from the child scopes), so one child's
			// completion dirties no parent record.
			pts.Results[sc.ElemIndex] = elementResult(sc)
			pts.ChildWaiting--
			if pts.ChildWaiting == 0 {
				e.finishTask(in, parent, pt, pts, map[string]ocr.Value{
					"results": ocr.List(pts.Results...),
				})
			}
			return
		}
		outputs := make(map[string]ocr.Value, len(sc.Proc.Outputs))
		for _, o := range sc.Proc.Outputs {
			if v, ok := sc.Whiteboard[o]; ok {
				outputs[o] = v
			} else {
				outputs[o] = ocr.Null
			}
		}
		e.finishTask(in, parent, pt, pts, outputs)
	case ocr.KindSubprocess:
		outputs := make(map[string]ocr.Value, len(sc.Proc.Outputs))
		for _, o := range sc.Proc.Outputs {
			if v, ok := sc.Whiteboard[o]; ok {
				outputs[o] = v
			} else {
				outputs[o] = ocr.Null
			}
		}
		e.finishTask(in, parent, pt, pts, outputs)
	}
}

// elementResult is one parallel element's contribution: the single
// declared output's value, or a list of outputs in declaration order.
func elementResult(sc *scope) ocr.Value {
	outs := sc.Proc.Outputs
	if len(outs) == 1 {
		if v, ok := sc.Whiteboard[outs[0]]; ok {
			return v
		}
		return ocr.Null
	}
	vs := make([]ocr.Value, len(outs))
	for i, o := range outs {
		if v, ok := sc.Whiteboard[o]; ok {
			vs[i] = v
		} else {
			vs[i] = ocr.Null
		}
	}
	return ocr.List(vs...)
}

// handleProgramFailure applies RETRY and ON FAILURE semantics after a
// program (not infrastructure) failure.
func (e *Engine) handleProgramFailure(in *Instance, sc *scope, t *ocr.Task, ts *taskState, cause error) {
	in.Failures++
	ts.Attempts++
	e.touchTask(in, sc, ts)
	if ts.Attempts <= t.Retries {
		in.Retries++
		e.emit(Event{Kind: EvTaskRetried, Instance: in.ID, Scope: sc.ID, Task: t.Name,
			Detail: fmt.Sprintf("attempt %d/%d: %v", ts.Attempts, t.Retries, cause)})
		if t.Kind == ocr.KindActivity {
			ts.Status = TaskReady
			e.requeue(in, sc, t, ts)
			return
		}
		// A failed sphere retries by re-running from scratch (its
		// scopes were already torn down and undone by abortSphere).
		ts.Status = TaskRunning
		e.touchTask(in, sc, ts)
		e.spawnBlock(in, sc, t, ts)
		return
	}
	switch t.OnFail {
	case ocr.FailIgnore:
		e.emit(Event{Kind: EvTaskFailed, Instance: in.ID, Scope: sc.ID, Task: t.Name,
			Detail: fmt.Sprintf("ignored: %v", cause)})
		e.finishTask(in, sc, t, ts, nil) // null outputs
	case ocr.FailAlternative:
		alt := sc.Proc.Task(t.AltTask)
		altState := sc.Tasks[t.AltTask]
		if alt == nil || altState == nil || altState.Status != TaskInactive {
			e.failInstance(in, fmt.Sprintf("task %s failed and alternative %q is unavailable", t.Name, t.AltTask))
			return
		}
		e.emit(Event{Kind: EvTaskFailed, Instance: in.ID, Scope: sc.ID, Task: t.Name,
			Detail: fmt.Sprintf("running alternative %s: %v", t.AltTask, cause)})
		altState.AltOf = t.Name
		e.activateTask(in, sc, alt)
	default: // FailAbort — or the enclosing sphere of atomicity
		e.failTask(in, sc, t, ts, cause)
	}
}

// requeue puts a ready task back on the activity queue (after a retryable
// failure).
func (e *Engine) requeue(in *Instance, sc *scope, t *ocr.Task, ts *taskState) {
	prog, _ := e.opts.Library.Lookup(t.Program)
	cost := DefaultActivityCost
	switch {
	case prog != nil && prog.Cost != nil:
		cost = prog.Cost(ts.Inputs)
	case t.Cost > 0:
		cost = time.Duration(t.Cost * float64(time.Second))
	}
	id := jobID(in, sc, t.Name, ts.Attempts)
	ts.Job = id
	ts.Node = ""
	job := sched.Job{ID: id, Cost: cost, Priority: in.Priority + t.Priority,
		Tenant: in.Tenant, Key: t.Program, Enqueued: e.now()}
	if prog != nil {
		job.OS = prog.OS
		job.Nodes = prog.Nodes
	}
	e.dmu.Lock()
	e.sched.Enqueue(job)
	e.queued[id] = &queuedRef{inst: in, sc: sc, ts: ts, job: job}
	e.dmu.Unlock()
	e.touchTask(in, sc, ts)
	e.persist(in)
}
