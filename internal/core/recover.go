package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"bioopera/internal/ocr"
	"bioopera/internal/store"
)

// This file is the restart path of the recovery module (§3.2): Recover
// rebuilds unfinished instances from their persisted delta records after a
// server crash or failover. The rebuild is a three-phase pipeline:
//
//  1. A serial scan groups the Instance space's raw records by instance
//     (keys carry the instance ID, so no value is decoded except the small
//     inst/ metadata record).
//  2. Workers decode and rebuild instances in parallel — decoding JSON and
//     parsing process text dominate recovery cost and touch only
//     per-instance state, so they stripe across Options.RecoverWorkers
//     goroutines with no shared locks.
//  3. A serial pass in sorted instance order takes each shard lock, resumes
//     execution state, registers the instance, and emits events — so the
//     recovery trace is deterministic regardless of worker count.
//
// With Options.LazyRecovery, suspended instances skip phase 2 entirely:
// they come back as stubs (decoded metadata plus their raw records) and
// hydrate on first mutating touch, so boot time scales with the active
// fraction of the store, not its total size.

// scopeRec collects one scope's persisted records during recovery: the
// legacy whole-scope record (if any) is the base, overlaid by the delta
// records. The json* fields remember which delta records were found in the
// legacy JSON encoding, so buildScopes can mark them for conversion — the
// first post-recovery checkpoint rewrites them through the binary codec.
type scopeRec struct {
	scopeID    string
	legacy     *scopeDTO
	create     *scopeCreateDTO
	dyn        *scopeDynDTO
	tasks      map[string]taskDTO
	jsonCreate bool
	jsonDyn    bool
	jsonTasks  map[string]bool
}

// splitInstKey splits "<inst>/<rest>" (instance IDs contain no '/').
func splitInstKey(rest string) (instID, sub string, ok bool) {
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return "", "", false
	}
	return rest[:slash], rest[slash+1:], true
}

// instGroup is one instance's share of the store scan: decoded metadata
// plus every raw scope/task/proc record, still undecoded.
type instGroup struct {
	id   string
	meta instanceDTO
	kvs  []store.KV
}

// stubState carries a lazily recovered instance's undecoded records until
// first touch. Guarded by the instance's shard lock.
type stubState struct {
	kvs []store.KV
}

// decodeInstanceRecords decodes one instance's raw records into the
// per-scope overlay structure and the interned process texts.
func decodeInstanceRecords(kvs []store.KV) (map[string]*scopeRec, map[string]string, error) {
	recMap := make(map[string]*scopeRec)
	procs := make(map[string]string)
	rec := func(scopeID string) *scopeRec {
		r := recMap[scopeID]
		if r == nil {
			r = &scopeRec{scopeID: scopeID, tasks: make(map[string]taskDTO)}
			recMap[scopeID] = r
		}
		return r
	}
	for _, kv := range kvs {
		switch {
		case strings.HasPrefix(kv.Key, "scope/"):
			var dto scopeDTO
			if err := json.Unmarshal(kv.Value, &dto); err != nil {
				return nil, nil, fmt.Errorf("core: corrupt scope record %s: %w", kv.Key, err)
			}
			rec(dto.ID).legacy = &dto
		case strings.HasPrefix(kv.Key, "scopec/"):
			dto, wasJSON, err := decodeCreateRecord(kv.Value)
			if err != nil {
				return nil, nil, fmt.Errorf("core: corrupt scope-create record %s: %w", kv.Key, err)
			}
			r := rec(dto.ID)
			r.create = &dto
			r.jsonCreate = wasJSON
		case strings.HasPrefix(kv.Key, "scoped/"):
			_, sub, ok := splitInstKey(strings.TrimPrefix(kv.Key, "scoped/"))
			if !ok {
				continue
			}
			dto, wasJSON, err := decodeDynRecord(kv.Value)
			if err != nil {
				return nil, nil, fmt.Errorf("core: corrupt scope-dynamic record %s: %w", kv.Key, err)
			}
			scopeID := sub
			if scopeID == "-" {
				scopeID = ""
			}
			r := rec(scopeID)
			r.dyn = &dto
			r.jsonDyn = wasJSON
		case strings.HasPrefix(kv.Key, "task/"):
			_, sub, ok := splitInstKey(strings.TrimPrefix(kv.Key, "task/"))
			if !ok {
				continue
			}
			// The task name follows the last '/': scope IDs may nest
			// ("A/B[3]"), task names cannot contain '/'.
			slash := strings.LastIndexByte(sub, '/')
			if slash < 0 {
				continue
			}
			scopeID, task := sub[:slash], sub[slash+1:]
			if scopeID == "-" {
				scopeID = ""
			}
			dto, wasJSON, err := decodeTaskRecord(kv.Value)
			if err != nil {
				return nil, nil, fmt.Errorf("core: corrupt task record %s: %w", kv.Key, err)
			}
			if dto.Name == "" {
				dto.Name = task
			}
			r := rec(scopeID)
			r.tasks[dto.Name] = dto
			if wasJSON {
				if r.jsonTasks == nil {
					r.jsonTasks = make(map[string]bool, 2)
				}
				r.jsonTasks[dto.Name] = true
			}
		case strings.HasPrefix(kv.Key, "proc/"):
			_, hash, ok := splitInstKey(strings.TrimPrefix(kv.Key, "proc/"))
			if !ok {
				continue
			}
			procs[hash] = string(kv.Value)
		}
	}
	return recMap, procs, nil
}

// Recover rebuilds all unfinished instances from the store after a server
// restart or crash. Both record layouts are understood — a mixed store
// (legacy whole-scope records alongside delta records) recovers cleanly,
// and legacy scopes are converted to the delta layout by their first
// post-recovery checkpoint. Activities recorded as running are treated as
// lost and re-queued; in-flight navigation is re-derived.
//
// A corrupt or inconsistent record set fails only its own instance: the
// rest recover normally, each failure is reported through Options.OnError,
// and the joined errors are returned alongside the count of instances that
// did recover.
//
// A federated engine (Options.Owns set) adopts only instances in its own
// partition; the rest stay in the store for their owners.
func (e *Engine) Recover() (int, error) { return e.RecoverOwned(nil) }

// RecoverOwned is the partition-scoped recovery entry point: it rebuilds
// only the unfinished instances for which owns returns true. Federation
// failover uses it to adopt exactly the orphaned partition a peer just
// claimed, without re-scanning instances this engine already runs (already
// registered instances are skipped either way). A nil owns falls back to
// Options.Owns, so RecoverOwned(nil) is Recover.
func (e *Engine) RecoverOwned(owns func(id string) bool) (int, error) {
	if owns == nil {
		owns = e.opts.Owns
	}
	kvs, err := e.opts.Store.List(store.Instance)
	if err != nil {
		return 0, err
	}

	// Phase 1 (serial): group raw records by instance. Only the small
	// inst/ metadata record is decoded here; everything else is deferred
	// to the workers (or, for lazy stubs, to first touch).
	var errs []error
	groups := make(map[string]*instGroup)
	group := func(id string) *instGroup {
		g := groups[id]
		if g == nil {
			g = &instGroup{id: id}
			groups[id] = g
		}
		return g
	}
	metas := make(map[string]bool)
	for _, kv := range kvs {
		if strings.HasPrefix(kv.Key, "inst/") {
			id := strings.TrimPrefix(kv.Key, "inst/")
			dto, _, err := decodeMetaRecord(kv.Value)
			if err != nil {
				errs = append(errs, fmt.Errorf("core: corrupt instance record %s: %w", kv.Key, err))
				continue
			}
			if dto.ID != "" {
				id = dto.ID
			}
			g := group(id)
			g.meta = dto
			metas[id] = true
			continue
		}
		for _, prefix := range [...]string{"scope/", "scopec/", "scoped/", "task/", "proc/"} {
			if strings.HasPrefix(kv.Key, prefix) {
				if instID, _, ok := splitInstKey(strings.TrimPrefix(kv.Key, prefix)); ok {
					g := group(instID)
					g.kvs = append(g.kvs, kv)
				}
				break
			}
		}
	}

	ids := make([]string, 0, len(metas))
	for id := range metas {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if owns != nil {
		kept := ids[:0]
		for _, id := range ids {
			if owns(id) {
				kept = append(kept, id)
			}
		}
		ids = kept
	}

	// Phase 2 (parallel): decode and rebuild. Worker w handles the sorted
	// indexes i with i%workers == w and writes only results[i]/buildErrs[i],
	// so the phase is lock-free; the per-worker parse cache still
	// deduplicates the N identical bodies of a parallel block, which land
	// on one worker because they belong to one instance.
	results := make([]*Instance, len(ids))
	buildErrs := make([]error, len(ids))
	workers := e.opts.RecoverWorkers
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			procCache := make(map[string]*ocr.Process)
			for i := w; i < len(ids); i += workers {
				g := groups[ids[i]]
				if _, exists := e.lookup(g.id); exists {
					continue // already live (Recover on a running engine)
				}
				results[i], buildErrs[i] = e.buildRecovered(g, procCache)
			}
		}(w)
	}
	wg.Wait()

	// Phase 3 (serial, sorted order): resume execution state under each
	// instance's shard, register, emit, checkpoint. Serializing this phase
	// keeps the recovery event trace independent of the worker count.
	recovered := 0
	for i, id := range ids {
		if err := buildErrs[i]; err != nil {
			errs = append(errs, err)
			continue
		}
		in := results[i]
		if in == nil {
			continue
		}
		if _, exists := e.lookup(id); exists {
			continue
		}
		// Resume under the instance's shard so concurrent pumps that pick
		// up the requeued work serialize against the rebuild.
		mu := e.shardFor(id)
		mu.Lock()
		if in.stub == nil {
			e.resumeInstance(in)
		}
		e.emu.Lock()
		e.instances[id] = in
		e.order = append(e.order, id)
		// Track the numeric suffix so new IDs stay unique.
		var n int
		if _, err := fmt.Sscanf(id, "p%d", &n); err == nil && n > e.nextID {
			e.nextID = n
		}
		e.emu.Unlock()
		recovered++
		e.emit(Event{Kind: EvServerRecovered, Instance: id,
			Detail: fmt.Sprintf("status=%s", in.Status)})
		// Checkpoint the rebuilt state: legacy scopes convert to the delta
		// layout here (their whole-scope records are deleted in the same
		// atomic batch that writes the replacement records).
		if len(in.dirty) > 0 || len(in.pendingDeletes) > 0 {
			e.persist(in)
		}
		e.endTurn(in, mu, false)
	}
	e.Pump()
	if e.opts.OnError != nil {
		for _, err := range errs {
			e.opts.OnError(err)
		}
	}
	return recovered, errors.Join(errs...)
}

// buildRecovered rebuilds one instance from its grouped records — or, with
// lazy recovery and a suspended instance, builds a stub that retains the
// raw records for hydration on first touch. Runs on recovery workers: it
// touches only the instance under construction and the worker's parse
// cache.
func (e *Engine) buildRecovered(g *instGroup, procCache map[string]*ocr.Process) (*Instance, error) {
	in := buildInstanceShell(g.meta)
	if e.opts.LazyRecovery && g.meta.Status == InstanceSuspended {
		// Record the interned-text hashes from the raw keys so later
		// checkpoints do not re-intern texts already on disk.
		for _, kv := range g.kvs {
			if strings.HasPrefix(kv.Key, "proc/") {
				if _, hash, ok := splitInstKey(strings.TrimPrefix(kv.Key, "proc/")); ok {
					in.procRefs[hash] = true
				}
			}
		}
		in.stub = &stubState{kvs: g.kvs}
		return in, nil
	}
	recMap, procTexts, err := decodeInstanceRecords(g.kvs)
	if err != nil {
		return nil, err
	}
	for hash := range procTexts {
		in.procRefs[hash] = true
	}
	if err := e.buildScopes(in, recMap, procTexts, procCache); err != nil {
		return nil, err
	}
	return in, nil
}

// buildInstanceShell constructs an Instance carrying only its metadata —
// the common base of a full rebuild and a lazy stub.
func buildInstanceShell(meta instanceDTO) *Instance {
	in := &Instance{
		ID: meta.ID, Template: meta.Template,
		Priority: meta.Priority, Nice: meta.Nice, Tenant: meta.Tenant,
		Started: meta.Started, Ended: meta.Ended,
		Activities: meta.Activities, CPU: meta.CPU,
		Failures: meta.Failures, Retries: meta.Retries,
		Outputs: meta.Outputs, FailureReason: meta.FailureReason,
		scopes:   make(map[string]*scope),
		procRefs: make(map[string]bool, 4),
	}
	in.setStatus(meta.Status)
	return in
}

// buildScopes reconstructs the instance's scope tree from its decoded
// records. It mutates only the instance under construction (dirty marks
// from legacy conversion included), so recovery workers may run it
// concurrently for different instances.
func (e *Engine) buildScopes(in *Instance, recMap map[string]*scopeRec, procTexts map[string]string, procCache map[string]*ocr.Process) error {
	// Sort records so parents come before children (shorter IDs first;
	// root "" is shortest) — children re-inherit whiteboard values from
	// the already-rebuilt parent.
	scopeRecs := make([]*scopeRec, 0, len(recMap))
	for _, r := range recMap {
		scopeRecs = append(scopeRecs, r)
	}
	sort.Slice(scopeRecs, func(i, j int) bool {
		if len(scopeRecs[i].scopeID) != len(scopeRecs[j].scopeID) {
			return len(scopeRecs[i].scopeID) < len(scopeRecs[j].scopeID)
		}
		return scopeRecs[i].scopeID < scopeRecs[j].scopeID
	})
	parse := func(text, where string) (*ocr.Process, error) {
		if p, ok := procCache[text]; ok {
			return p, nil
		}
		p, err := ocr.ParseProcess(text)
		if err != nil {
			return nil, fmt.Errorf("core: scope %s has invalid process text: %w", where, err)
		}
		procCache[text] = p
		return p, nil
	}
	for _, r := range scopeRecs {
		where := in.ID + "/" + nzScope(r.scopeID)
		// Shape: the delta create record wins; legacy is the fallback.
		var (
			text       string
			parentID   string
			isRoot     bool
			parentTask string
			elemIndex  int
		)
		switch {
		case r.create != nil:
			parentID, isRoot = r.create.Parent, r.create.IsRoot
			parentTask, elemIndex = r.create.ParentTask, r.create.ElemIndex
			switch {
			case r.create.ProcRef != "":
				var ok bool
				text, ok = procTexts[r.create.ProcRef]
				if !ok {
					return fmt.Errorf("core: scope %s references missing process text %s", where, r.create.ProcRef)
				}
			case r.create.ProcText != "":
				text = r.create.ProcText
			default:
				return fmt.Errorf("core: scope %s has no process text", where)
			}
		case r.legacy != nil:
			parentID, isRoot = r.legacy.Parent, r.legacy.IsRoot
			parentTask, elemIndex = r.legacy.ParentTask, r.legacy.ElemIndex
			text = r.legacy.ProcText
		default:
			return fmt.Errorf("core: scope %s has no create record", where)
		}
		proc, err := parse(text, where)
		if err != nil {
			return err
		}
		sc := &scope{
			ID:         r.scopeID,
			Proc:       proc,
			ParentTask: parentTask,
			ElemIndex:  elemIndex,
			Whiteboard: make(map[string]ocr.Value),
			Tasks:      make(map[string]*taskState),
			children:   make(map[string]*scope),
		}
		if !isRoot {
			parent := in.scopes[parentID]
			if parent == nil {
				return fmt.Errorf("core: scope %s has missing parent %q", where, parentID)
			}
			sc.Parent = parent
			parent.children[sc.ID] = sc
		} else {
			in.root = sc
		}
		// Whiteboard: the dynamic record's owned entries overlay what the
		// scope inherits from its parent; Full records (and legacy ones)
		// are self-contained.
		switch {
		case r.dyn != nil:
			sc.Done = r.dyn.Done
			if r.dyn.Full {
				sc.wbFull = true
				for k, v := range r.dyn.Entries {
					sc.Whiteboard[k] = v
				}
			} else {
				if sc.Parent != nil {
					for k, v := range sc.Parent.Whiteboard {
						sc.Whiteboard[k] = v
					}
				}
				for _, k := range r.dyn.Drop {
					delete(sc.Whiteboard, k)
					sc.ownWB(k, false)
				}
				entries := make([]string, 0, len(r.dyn.Entries))
				for k := range r.dyn.Entries {
					entries = append(entries, k)
				}
				sort.Strings(entries)
				for _, k := range entries {
					sc.Whiteboard[k] = r.dyn.Entries[k]
					sc.ownWB(k, true)
				}
			}
		case r.legacy != nil:
			sc.Done = r.legacy.Done
			sc.wbFull = true
			for k, v := range r.legacy.Whiteboard {
				sc.Whiteboard[k] = v
			}
		}
		// Tasks: legacy records are the base, delta task records overlay.
		applyTask := func(td taskDTO) {
			sc.Tasks[td.Name] = &taskState{
				Name: td.Name, Status: td.Status, Attempts: td.Attempts,
				Inputs: td.Inputs, Outputs: td.Outputs,
				Node: td.Node, Job: td.Job, AltOf: td.AltOf,
				ReadyAt: td.ReadyAt, StartedAt: td.StartedAt, EndedAt: td.EndedAt,
				CPUTime: td.CPUTime, ChildWaiting: td.ChildWaiting,
				Results: td.Results, OverElems: td.OverElems,
				ConnIn: make([]connState, len(proc.Incoming(td.Name))),
			}
		}
		if r.legacy != nil {
			for _, td := range r.legacy.Tasks {
				applyTask(td)
			}
		}
		taskNames := make([]string, 0, len(r.tasks))
		for name := range r.tasks {
			taskNames = append(taskNames, name)
		}
		sort.Strings(taskNames)
		for _, name := range taskNames {
			applyTask(r.tasks[name])
		}
		// Tasks present in the process but missing from the records
		// (older snapshot) start inactive.
		for _, t := range proc.Tasks {
			if _, ok := sc.Tasks[t.Name]; !ok {
				sc.Tasks[t.Name] = &taskState{
					Name:   t.Name,
					ConnIn: make([]connState, len(proc.Incoming(t.Name))),
				}
			}
		}
		if r.legacy != nil && r.create == nil {
			// Legacy-only scope: convert it. The first checkpoint writes
			// the full delta-record set and deletes the whole-scope record
			// in the same atomic batch.
			sc.wbFull = true
			e.touchNew(in, sc)
			for _, t := range sc.Proc.Tasks {
				if ts := sc.Tasks[t.Name]; ts.Status != TaskInactive || ts.Inputs != nil {
					e.touchTask(in, sc, ts)
				}
			}
			in.pendingDeletes = append(in.pendingDeletes, legacyScopeKey(in.ID, sc.ID))
		} else {
			// Delta records found in the legacy JSON encoding convert in
			// place: mark exactly those records dirty so the first
			// post-recovery checkpoint rewrites them through the binary
			// codec. The interned process text is already in in.procRefs,
			// so a re-marked create record never re-writes the text.
			if r.jsonCreate {
				e.touchNew(in, sc)
			} else if r.jsonDyn {
				e.touchMeta(in, sc)
			}
			for _, name := range sortedJSONTasks(r) {
				if ts := sc.Tasks[name]; ts != nil {
					e.touchTask(in, sc, ts)
				}
			}
		}
		in.scopes[sc.ID] = sc
	}
	if in.root == nil {
		return fmt.Errorf("core: instance %s has no root scope record", in.ID)
	}
	return nil
}

// resumeInstance restores execution state after the scope tree is rebuilt:
// lost work is requeued, waits re-armed, in-flight navigation re-derived.
// It is the effectful half of recovery — it touches the dispatcher indexes
// and emits events — so it runs serially under the instance's shard lock.
func (e *Engine) resumeInstance(in *Instance) {
	if in.Status == InstanceDone || in.Status == InstanceFailed {
		return
	}
	// Resume children before parents.
	ordered := make([]*scope, 0, len(in.scopes))
	for _, sc := range in.scopes {
		ordered = append(ordered, sc)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if len(ordered[i].ID) != len(ordered[j].ID) {
			return len(ordered[i].ID) > len(ordered[j].ID)
		}
		return ordered[i].ID < ordered[j].ID
	})
	for _, sc := range ordered {
		e.resumeScope(in, sc)
		if in.Status == InstanceFailed {
			return
		}
	}
	for _, sc := range ordered {
		e.maybeCompleteScope(in, sc)
		if in.Status == InstanceFailed || in.Status == InstanceDone {
			break
		}
	}
}

// hydrateLocked materializes a lazily recovered stub: the retained raw
// records are decoded, the scope tree rebuilt, and execution state resumed
// — the work Recover deferred. Caller holds the instance's shard lock and
// runs inside a turn, so checkpoints produced here flush at its endTurn.
// On error the stub is restored untouched, so the instance stays a valid
// meta-only shell and the caller's operation fails cleanly.
func (e *Engine) hydrateLocked(in *Instance) error {
	st := in.stub
	if st == nil {
		return nil
	}
	preDeletes := len(in.pendingDeletes)
	recMap, procTexts, err := decodeInstanceRecords(st.kvs)
	if err == nil {
		err = e.buildScopes(in, recMap, procTexts, make(map[string]*ocr.Process))
	}
	if err != nil {
		in.root = nil
		in.scopes = make(map[string]*scope)
		clear(in.dirty)
		in.pendingDeletes = in.pendingDeletes[:preDeletes]
		return fmt.Errorf("core: hydrating instance %s: %w", in.ID, err)
	}
	in.stub = nil
	for hash := range procTexts {
		in.procRefs[hash] = true
	}
	e.resumeInstance(in)
	e.emit(Event{Kind: EvServerRecovered, Instance: in.ID, Detail: "hydrated"})
	if len(in.dirty) > 0 || len(in.pendingDeletes) > 0 {
		e.persist(in)
	}
	return nil
}

// Hydrated reports whether the instance's full state is in memory (false
// only for lazy-recovery stubs that have not been touched yet). Callers
// that merely observe an instance — the monitor, Progress — see a
// meta-only view of stubs and need not force hydration.
func (e *Engine) Hydrated(id string) (bool, error) {
	in, ok := e.lookup(id)
	if !ok {
		return false, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
	}
	mu := e.shardFor(id)
	mu.Lock()
	h := in.stub == nil
	mu.Unlock()
	return h, nil
}

// resumeScope restores per-task execution state of one scope: requeues
// lost work, respawns missing child scopes, and re-derives connector
// decisions for tasks that never activated.
func (e *Engine) resumeScope(in *Instance, sc *scope) {
	for _, t := range sc.Proc.Tasks {
		ts := sc.Tasks[t.Name]
		switch ts.Status {
		case TaskReady:
			// Was queued; re-queue.
			e.requeue(in, sc, t, ts)
		case TaskRunning:
			switch t.Kind {
			case ocr.KindActivity:
				if t.Await != "" {
					// Still waiting for its event; re-arm
					// the wait (signals buffered before the
					// crash are volatile and lost, as is a
					// signal — the sender re-sends).
					ts.Status = TaskInactive
					e.awaitEvent(in, sc, t, ts)
					continue
				}
				// Dispatched but no completion recorded: the
				// work is lost; re-queue (§3.3:
				// checkpointing at activity granularity).
				in.Failures++
				in.Retries++
				ts.Status = TaskReady
				ts.Node = ""
				e.emit(Event{Kind: EvTaskRetried, Instance: in.ID, Scope: sc.ID,
					Task: t.Name, Detail: "lost in server crash"})
				e.requeue(in, sc, t, ts)
			case ocr.KindBlock:
				e.resumeBlock(in, sc, t, ts)
			case ocr.KindSubprocess:
				e.resumeChildScope(in, sc, t, ts, func() {
					ts.ChildWaiting = 1
					e.spawnSubprocess(in, sc, t, ts)
				})
			}
		}
	}
	// Root activations are unconditional at scope start, so a root still
	// inactive in the checkpoint means its activation was lost (crash
	// between the scope's first checkpoint and the next one). Re-derive
	// it; activateTask is a no-op for tasks past inactive.
	if !sc.Done {
		e.activateRoots(in, sc)
		if in.Status == InstanceFailed {
			return
		}
	}
	// Re-derive connector decisions from terminal tasks so targets that
	// had not yet activated (or whose activation was not persisted)
	// activate now. Delivery skips targets that are no longer
	// inactive.
	for _, t := range sc.Proc.Tasks {
		ts := sc.Tasks[t.Name]
		if ts.Status == TaskEnded || ts.Status == TaskDead {
			e.propagate(in, sc, t, ts)
			if in.Status == InstanceFailed {
				return
			}
		}
	}
	e.touchMeta(in, sc)
}

// resumeChildScope handles a Running block/subprocess task whose single
// child scope may be missing (respawn) or already Done (redeliver its
// outputs — the crash happened between child completion and parent
// delivery).
func (e *Engine) resumeChildScope(in *Instance, sc *scope, t *ocr.Task, ts *taskState, respawn func()) {
	childID := scopePath(sc, t.Name, -1)
	child, ok := in.scopes[childID]
	if !ok {
		respawn()
		return
	}
	if child.Done {
		outputs := make(map[string]ocr.Value, len(child.Proc.Outputs))
		for _, o := range child.Proc.Outputs {
			if v, ok := child.Whiteboard[o]; ok {
				outputs[o] = v
			} else {
				outputs[o] = ocr.Null
			}
		}
		e.finishTask(in, sc, t, ts, outputs)
		return
	}
	// Derived state: one live child (task records do not persist it).
	ts.ChildWaiting = 1
}

// resumeBlock recreates block child scopes whose records were lost (crash
// between block activation and child persistence) and redelivers results
// from children that completed but whose delivery was not persisted.
// ChildWaiting and Results are recomputed here — they are not persisted.
func (e *Engine) resumeBlock(in *Instance, sc *scope, t *ocr.Task, ts *taskState) {
	if !t.Parallel {
		e.resumeChildScope(in, sc, t, ts, func() {
			child := e.newScope(in, sc, t.Name, -1, t.Body)
			copyWhiteboard(child, sc)
			ts.ChildWaiting = 1
			e.startScope(in, child)
		})
		return
	}
	n := len(ts.OverElems)
	if n == 0 {
		return
	}
	if len(ts.Results) != n {
		ts.Results = make([]ocr.Value, n)
	}
	waiting := 0
	var missing []int
	for i := 0; i < n; i++ {
		childID := scopePath(sc, t.Name, i)
		child, ok := in.scopes[childID]
		if ok {
			if child.Done {
				// Recompute the element result: delivery may
				// not have been persisted.
				ts.Results[i] = elementResult(child)
			} else {
				waiting++
			}
			continue
		}
		missing = append(missing, i)
		waiting++
	}
	ts.ChildWaiting = waiting
	if waiting == 0 {
		e.finishTask(in, sc, t, ts, map[string]ocr.Value{
			"results": ocr.List(ts.Results...),
		})
		return
	}
	for _, i := range missing {
		child := e.newScope(in, sc, t.Name, i, t.Body)
		copyWhiteboard(child, sc)
		child.Whiteboard[t.As] = ts.OverElems[i]
		child.ownWB(t.As, true)
		e.startScope(in, child)
	}
}
