package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// These tests cover the incremental-checkpoint layout: recovery from
// legacy whole-scope stores (byte-equivalent state), mixed-layout stores,
// torn mid-delta batches, checkpoint failure re-marking, and allocation
// guards on the persist hot path.

// legacyScopeDTO replicates the first engine generation's whole-scope
// record writer exactly (one scopeDTO per scope, tasks in Proc order), so
// tests can fabricate stores as the old engine would have written them.
func legacyScopeDTO(sc *scope) scopeDTO {
	dto := scopeDTO{
		ID:         sc.ID,
		IsRoot:     sc.Parent == nil,
		ParentTask: sc.ParentTask,
		ElemIndex:  sc.ElemIndex,
		ProcText:   sc.procText(),
		Whiteboard: sc.Whiteboard,
		Done:       sc.Done,
	}
	if sc.Parent != nil {
		dto.Parent = sc.Parent.ID
	}
	for _, t := range sc.Proc.Tasks {
		ts := sc.Tasks[t.Name]
		dto.Tasks = append(dto.Tasks, taskDTO{
			Name: ts.Name, Status: ts.Status, Attempts: ts.Attempts,
			Inputs: ts.Inputs, Outputs: ts.Outputs,
			Node: ts.Node, Job: ts.Job, AltOf: ts.AltOf,
			ReadyAt: ts.ReadyAt, StartedAt: ts.StartedAt, EndedAt: ts.EndedAt,
			CPUTime: ts.CPUTime, ChildWaiting: ts.ChildWaiting,
			Results: ts.Results, OverElems: ts.OverElems,
		})
	}
	return dto
}

// writeLegacyInstance stores an instance in the old layout: one inst/
// metadata record plus one whole-scope record per scope.
func writeLegacyInstance(t *testing.T, st store.Store, in *Instance) {
	t.Helper()
	meta, err := json.Marshal(buildInstanceDTO(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(store.Instance, metaKey(in.ID), meta); err != nil {
		t.Fatal(err)
	}
	for _, sc := range in.scopes {
		data, err := json.Marshal(legacyScopeDTO(sc))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(store.Instance, legacyScopeKey(in.ID, sc.ID), data); err != nil {
			t.Fatal(err)
		}
	}
}

// dumpInstance renders an instance's observable state as canonical JSON:
// metadata, then each scope (sorted by ID) with its whiteboard and tasks in
// Proc order, including the derived fields recovery recomputes. Two
// recoveries of the same execution state must dump byte-identically.
func dumpInstance(t *testing.T, in *Instance) string {
	t.Helper()
	type scopeDump struct {
		scopeDTO
		Tasks []taskDTO `json:"tasks"`
	}
	var scopes []scopeDump
	for _, sc := range in.scopes {
		d := legacyScopeDTO(sc)
		d.ProcText = sc.procText()
		scopes = append(scopes, scopeDump{scopeDTO: d, Tasks: d.Tasks})
	}
	sort.Slice(scopes, func(i, j int) bool { return scopes[i].ID < scopes[j].ID })
	out, err := json.MarshalIndent(struct {
		Meta   instanceDTO `json:"meta"`
		Scopes []scopeDump `json:"scopes"`
	}{buildInstanceDTO(in), scopes}, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// quiesceSuspended runs a mid-flight parallel instance into a stable
// suspended state: kills delivered, every task Ready or terminal, nothing
// on the cluster.
func quiesceSuspended(t *testing.T, rt *SimRuntime, id string, at sim.Time) {
	t.Helper()
	rt.RunUntil(at)
	if err := rt.Engine.Suspend(id, false); err != nil {
		t.Fatal(err)
	}
	rt.RunUntil(at + sim.Time(time.Second)) // drain kill completions
	if rt.Engine.RunningJobs() != 0 {
		t.Fatal("jobs still running after suspend drain")
	}
}

func TestRecoverLegacyLayoutByteEquivalent(t *testing.T) {
	// Drive one instance mid-flight in the new layout, fabricate the same
	// execution state as a legacy whole-scope store, and recover both: the
	// rebuilt instances must be byte-identical, and the legacy instance
	// must finish with the same result.
	stA := store.NewMem()
	rtA := newRuntime(t, SimConfig{Store: stA})
	register(t, rtA, parallelSrc)
	xs := ocr.List(ocr.Num(1), ocr.Num(2), ocr.Num(3), ocr.Num(4), ocr.Num(5), ocr.Num(6))
	id := start(t, rtA, "Par", map[string]ocr.Value{"xs": xs})
	quiesceSuspended(t, rtA, id, sim.Time(1500*time.Millisecond))

	inA, _ := rtA.Engine.Instance(id)
	stB := store.NewMem()
	writeLegacyInstance(t, stB, inA)

	rtA.Engine.Crash()
	if n, err := rtA.Engine.Recover(); err != nil || n != 1 {
		t.Fatalf("recover new layout = %d, %v", n, err)
	}
	rtB := newRuntime(t, SimConfig{Store: stB})
	register(t, rtB, parallelSrc)
	if n, err := rtB.Engine.Recover(); err != nil || n != 1 {
		t.Fatalf("recover legacy layout = %d, %v", n, err)
	}

	inA, _ = rtA.Engine.Instance(id)
	inB, ok := rtB.Engine.Instance(id)
	if !ok {
		t.Fatal("legacy instance not recovered")
	}
	dumpA, dumpB := dumpInstance(t, inA), dumpInstance(t, inB)
	if dumpA != dumpB {
		t.Fatalf("legacy recovery diverged from new-layout recovery:\n--- new ---\n%s\n--- legacy ---\n%s", dumpA, dumpB)
	}

	// The legacy instance was converted on recovery: whole-scope records
	// replaced by delta records in the same store.
	kvs, err := stB.List(store.Instance)
	if err != nil {
		t.Fatal(err)
	}
	var haveCreate, haveTask, haveProc bool
	for _, kv := range kvs {
		switch {
		case strings.HasPrefix(kv.Key, "scope/"):
			t.Fatalf("legacy record %s survived conversion", kv.Key)
		case strings.HasPrefix(kv.Key, "scopec/"):
			haveCreate = true
		case strings.HasPrefix(kv.Key, "task/"):
			haveTask = true
		case strings.HasPrefix(kv.Key, "proc/"):
			haveProc = true
		}
	}
	if !haveCreate || !haveTask || !haveProc {
		t.Fatalf("conversion incomplete: create=%v task=%v proc=%v", haveCreate, haveTask, haveProc)
	}

	// Both finish with the same answer.
	for _, rt := range []*SimRuntime{rtA, rtB} {
		if err := rt.Engine.Resume(id); err != nil {
			t.Fatal(err)
		}
		rt.Run()
		in := finished(t, rt, id)
		for i := 0; i < 6; i++ {
			if got := in.Outputs["doubled"].At(i).AsNum(); got != float64(2*(i+1)) {
				t.Fatalf("doubled[%d] = %v", i, got)
			}
		}
	}
}

func TestRecoverMixedLayoutStore(t *testing.T) {
	// One store holding a new-layout instance alongside a legacy-layout
	// instance: both must recover and run to completion.
	stA := store.NewMem()
	rtA := newRuntime(t, SimConfig{Store: stA})
	register(t, rtA, parallelSrc)
	xs1 := ocr.List(ocr.Num(1), ocr.Num(2), ocr.Num(3))
	xs2 := ocr.List(ocr.Num(10), ocr.Num(20), ocr.Num(30), ocr.Num(40))
	id1 := start(t, rtA, "Par", map[string]ocr.Value{"xs": xs1})
	id2 := start(t, rtA, "Par", map[string]ocr.Value{"xs": xs2})
	rtA.RunUntil(sim.Time(500 * time.Millisecond))
	for _, id := range []string{id1, id2} {
		if err := rtA.Engine.Suspend(id, false); err != nil {
			t.Fatal(err)
		}
	}
	rtA.RunUntil(sim.Time(2500 * time.Millisecond))

	// id1 keeps its new-layout records; id2 is rewritten as legacy.
	stM := store.NewMem()
	kvs, err := stA.List(store.Instance)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range kvs {
		if strings.Contains(kv.Key, id1) {
			if err := stM.Put(store.Instance, kv.Key, kv.Value); err != nil {
				t.Fatal(err)
			}
		}
	}
	in2, _ := rtA.Engine.Instance(id2)
	writeLegacyInstance(t, stM, in2)

	rtM := newRuntime(t, SimConfig{Store: stM})
	register(t, rtM, parallelSrc)
	if n, err := rtM.Engine.Recover(); err != nil || n != 2 {
		t.Fatalf("recover mixed store = %d, %v", n, err)
	}
	for _, id := range []string{id1, id2} {
		if err := rtM.Engine.Resume(id); err != nil {
			t.Fatal(err)
		}
	}
	rtM.Run()
	in1 := finished(t, rtM, id1)
	if got := in1.Outputs["doubled"].At(2).AsNum(); got != 6 {
		t.Fatalf("id1 doubled[2] = %v", got)
	}
	in2 = finished(t, rtM, id2)
	if got := in2.Outputs["doubled"].At(3).AsNum(); got != 80 {
		t.Fatalf("id2 doubled[3] = %v", got)
	}
}

// tearWALTail truncates the newest WAL segment mid-frame, inside the last
// batch: the cut lands in the middle of the final frame's data, simulating
// a crash between marshal and full commit of a delta batch.
func tearWALTail(t *testing.T, dir string) {
	t.Helper()
	walDir := filepath.Join(dir, "wal")
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".log") {
			segs = append(segs, e.Name())
		}
	}
	if len(segs) == 0 {
		t.Fatal("no WAL segments")
	}
	sort.Strings(segs)
	tail := filepath.Join(walDir, segs[len(segs)-1])
	data, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	// Walk the frames (uint32 len|batchFlag, uint32 crc, data) to find
	// where the last frame's data begins, then cut into it.
	const batchFlag = 1 << 31
	var off, lastData int64
	for off+8 <= int64(len(data)) {
		length := int64(binary.LittleEndian.Uint32(data[off:off+4]) &^ batchFlag)
		if off+8+length > int64(len(data)) {
			break
		}
		lastData = off + 8
		off += 8 + length
	}
	if lastData == 0 {
		t.Fatal("no complete frame to tear")
	}
	cut := lastData + (off-lastData)/2
	if cut <= lastData {
		cut = lastData + 1
	}
	if err := os.Truncate(tail, cut); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverTornDeltaBatch(t *testing.T) {
	// A crash mid-checkpoint-batch must roll the store back to the
	// previous complete checkpoint, from which recovery resumes cleanly.
	dir := t.TempDir()
	st, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rt := newRuntime(t, SimConfig{Store: st})
	register(t, rt, parallelSrc)
	xs := ocr.List(ocr.Num(1), ocr.Num(2), ocr.Num(3), ocr.Num(4))
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": xs})
	rt.RunUntil(sim.Time(1500 * time.Millisecond))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	tearWALTail(t, dir)

	st2, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		t.Fatalf("reopening torn store: %v", err)
	}
	defer st2.Close()
	rt2 := newRuntime(t, SimConfig{Store: st2})
	if n, err := rt2.Engine.Recover(); err != nil || n != 1 {
		t.Fatalf("recover after torn batch = %d, %v", n, err)
	}
	rt2.Run()
	in := finished(t, rt2, id)
	for i := 0; i < 4; i++ {
		if got := in.Outputs["doubled"].At(i).AsNum(); got != float64(2*(i+1)) {
			t.Fatalf("doubled[%d] = %v", i, got)
		}
	}
}

// toggleStore fails Batch while tripped, then recovers when untripped —
// unlike failingStore it can be disarmed, so tests can provoke a failure
// window and verify the next successful checkpoint repairs it.
type toggleStore struct {
	store.Store
	mu      sync.Mutex
	tripped bool
	fails   int
}

func (f *toggleStore) set(tripped bool) {
	f.mu.Lock()
	f.tripped = tripped
	f.mu.Unlock()
}

func (f *toggleStore) Batch(ops []store.Op) error {
	f.mu.Lock()
	tripped := f.tripped
	if tripped {
		f.fails++
	}
	f.mu.Unlock()
	if tripped {
		return fmt.Errorf("store full")
	}
	return f.Store.Batch(ops)
}

func TestPersistRemarkAfterBatchFailure(t *testing.T) {
	// Checkpoints that fail re-mark their records; the next successful
	// checkpoint must carry them. Fail every batch while Compute finishes,
	// then let one unrelated SetParameter checkpoint through and verify a
	// crash+recover restores the full state, Compute's completion included.
	fs := &toggleStore{Store: store.NewMem()}
	rt := newRuntime(t, SimConfig{Store: fs})
	register(t, rt, approvalSrc)
	id := start(t, rt, "Approval", map[string]ocr.Value{"x": ocr.Num(21)})
	fs.set(true)
	rt.RunUntil(sim.Time(5 * time.Second)) // Compute done, Review awaiting
	if aw := rt.Engine.Awaiting(id); len(aw) != 1 {
		t.Fatalf("awaiting = %v", aw)
	}
	fs.set(false)
	if fs.fails == 0 {
		t.Fatal("no batches failed during the window")
	}
	if err := rt.Engine.SetParameter(id, "note", ocr.Str("repair")); err != nil {
		t.Fatal(err)
	}

	before, _ := rt.Engine.Instance(id)
	dumpBefore := dumpInstance(t, before)
	rt.Engine.Crash()
	if n, err := rt.Engine.Recover(); err != nil || n != 1 {
		t.Fatalf("recover = %d, %v", n, err)
	}
	after, _ := rt.Engine.Instance(id)
	if dumpAfter := dumpInstance(t, after); dumpAfter != dumpBefore {
		t.Fatalf("state lost across failed-checkpoint window:\n--- before ---\n%s\n--- after ---\n%s", dumpBefore, dumpAfter)
	}
	if err := rt.Engine.Signal(id, "approved", map[string]ocr.Value{
		"verdict": ocr.Str("ok"), "correction": ocr.Num(0),
	}); err != nil {
		t.Fatal(err)
	}
	rt.Run()
	in := finished(t, rt, id)
	if got := in.Outputs["published"].At(0).AsNum(); got != 42 {
		t.Fatalf("published = %v", in.Outputs["published"])
	}
}

func TestPersistHotPathAllocs(t *testing.T) {
	// Guard the per-activity checkpoint cost: touching one task, snapshot,
	// marshal and commit must stay allocation-light (the pooled ckpt and
	// flusher scratch absorb the steady-state cost).
	rt := newRuntime(t, SimConfig{})
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(2)})
	e := rt.Engine
	in, _ := e.Instance(id)
	mu := e.shardFor(id)
	sc := in.root
	ts := sc.Tasks["Add"]
	run := func() {
		mu.Lock()
		e.touchTask(in, sc, ts)
		e.persist(in)
		cks := in.pendingCkpts
		in.pendingCkpts = nil
		mu.Unlock()
		for _, ck := range cks {
			e.flushCkpt(in, ck)
		}
	}
	run() // warm the pools
	allocs := testing.AllocsPerRun(200, run)
	t.Logf("persist+flush of one dirty task = %.1f allocs", allocs)
	// One task record: DTO snapshot and mem-store value copies. Binary
	// encoding itself is allocation-free (pooled encoder, see
	// TestCodecEncodeAllocs), so the remaining cost is the snapshot and
	// store copy; 20 leaves headroom without hiding a regression to
	// per-record marshal allocations.
	if allocs > 20 {
		t.Errorf("persist+flush of one dirty task = %.1f allocs, want <= 20", allocs)
	}
}
