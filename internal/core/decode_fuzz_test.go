package core

import (
	"testing"

	"bioopera/internal/codec"
	"bioopera/internal/store"
)

// FuzzDecodeInstanceRecords hammers the delta-record decode path with
// arbitrary key/value pairs. Recovery feeds this function raw store
// contents, so it must never panic — corrupt input yields an error (or is
// ignored for unrecognized keys), nothing else. Torn JSON, truncated keys,
// wrong prefixes, and embedded separators are all fair game.
func FuzzDecodeInstanceRecords(f *testing.F) {
	// Well-formed seeds, one per record family, plus near-misses.
	f.Add("scopec/p0001/-", []byte(`{"id":"","proc":"PROCESS P {}"}`), "task/p0001/-/Add", []byte(`{"name":"Add","state":"ready"}`))
	f.Add("scoped/p0001/-", []byte(`{"id":""}`), "proc/p0001/0011223344556677", []byte("PROCESS P {}"))
	f.Add("scope/p0001/-", []byte(`{"id":"","tasks":[]}`), "scopec/p0001/Fan[2]", []byte(`{"id":"Fan[2]"}`))
	f.Add("task/p0001", []byte("{"), "scopec/", []byte("null"))
	f.Add("task/p0001/A/B[1]/T", []byte(`{"name":"T"}`), "scoped/p0001/-", []byte("{torn"))
	f.Add("", []byte(""), "proc//", []byte{0xff, 0xfe})
	// Binary-format seeds: well-formed codec records under the right keys,
	// plus misfiled kinds and torn binary.
	e := codec.Get()
	encodeCreate(e, &scopeCreateDTO{ID: "-", IsRoot: true, ProcText: "PROCESS P {}"})
	encodeTask(e, &taskDTO{Name: "Add", Status: TaskReady})
	encodeDyn(e, &scopeDynDTO{Full: true})
	createBin := append([]byte(nil), e.Span(0)...)
	taskBin := append([]byte(nil), e.Span(1)...)
	dynBin := append([]byte(nil), e.Span(2)...)
	codec.Put(e)
	f.Add("scopec/p0001/-", createBin, "task/p0001/-/Add", taskBin)
	f.Add("scoped/p0001/-", dynBin, "scopec/p0001/-", taskBin) // misfiled kind
	f.Add("task/p0001/-/Add", taskBin[:len(taskBin)-2], "scoped/p0001/-", []byte{codec.Magic, 0xFF})
	f.Fuzz(func(t *testing.T, k1 string, v1 []byte, k2 string, v2 []byte) {
		kvs := []store.KV{{Key: k1, Value: v1}, {Key: k2, Value: v2}}
		recMap, procs, err := decodeInstanceRecords(kvs)
		if err != nil {
			return
		}
		// On success the maps must be well-formed: no nil records, and
		// every record's scopeID matches its map key.
		for id, r := range recMap {
			if r == nil {
				t.Fatalf("nil scopeRec under %q", id)
			}
			if r.scopeID != id {
				t.Fatalf("scopeRec %q filed under %q", r.scopeID, id)
			}
		}
		_ = procs
	})
}
