package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/ocr"
	"bioopera/internal/sched"
)

// This file is the dispatcher (§3.2): it takes activities from the
// activity queue, asks the scheduling policy for a node, and launches them
// through the cluster's program execution clients. Completions flow back
// through HandleCompletion, which also implements the recovery semantics
// for node failures.

// Pump dispatches as many queued activities as the cluster can take.
// Drivers call it after anything that may have freed capacity. It is safe
// for concurrent callers: each pops jobs from the queue under dmu and
// dispatches them in parallel — dispatch re-validates every job under its
// instance's shard, so concurrent drains never double-start a job. (The
// sim driver is single-threaded, so sim dispatch order stays
// deterministic.)
func (e *Engine) Pump() {
	if e.paused.Load() {
		return
	}
	e.drain()
}

// drain pops dispatchable jobs until the queue or the cluster is
// exhausted. The scheduler owns ordering (priority, tenant fair share)
// and placement; the engine only vetoes jobs whose instance is not
// running and executes the decisions.
func (e *Engine) drain() {
	e.reapUnplaceable()
	for {
		e.dmu.Lock()
		nodes := e.opts.Executor.Nodes()
		t0 := e.now()
		job, node, ok := e.sched.Next(nodes, func(j sched.Job) bool {
			ref := e.queued[j.ID]
			// Suspended instances stay queued.
			return ref != nil && ref.inst.statusNow() == InstanceRunning
		})
		e.metrics.decision(e.now().Sub(t0))
		if !ok {
			e.dmu.Unlock()
			return
		}
		ref := e.queued[job.ID]
		delete(e.queued, job.ID)
		e.dmu.Unlock()
		if !e.dispatch(job, node, ref) {
			return
		}
	}
}

// reapUnplaceable removes jobs the scheduler reports as permanently
// unplaceable — every node their Nodes list names is down or unknown —
// and fails their tasks with an EvTaskUnplaceable event instead of
// letting them queue silently forever.
func (e *Engine) reapUnplaceable() {
	e.dmu.Lock()
	dead := e.sched.TakeUnplaceable(e.opts.Executor.Nodes())
	refs := make([]*queuedRef, len(dead))
	for i, job := range dead {
		refs[i] = e.queued[job.ID]
		delete(e.queued, job.ID)
	}
	e.dmu.Unlock()
	for i, job := range dead {
		e.failUnplaceable(job, refs[i])
	}
}

// failUnplaceable fails one permanently unplaceable task, re-validating
// under the instance's shard exactly like dispatch. Suspended instances
// get the job back — unplaceability is judged against live cluster state,
// and a suspended instance is not asking to run.
func (e *Engine) failUnplaceable(job sched.Job, ref *queuedRef) {
	if ref == nil {
		return
	}
	in, sc, ts := ref.inst, ref.sc, ref.ts
	mu := e.shardFor(in.ID)
	mu.Lock()
	if cur, live := e.lookup(in.ID); !live || cur != in {
		mu.Unlock()
		return
	}
	e.beginTurn(in)
	if sc.defunct || ts.Status != TaskReady || ts.Job != job.ID {
		e.endTurn(in, mu, false)
		return
	}
	if in.Status != InstanceRunning {
		requeue := in.Status == InstanceSuspended
		e.endTurn(in, mu, false)
		if requeue {
			e.dmu.Lock()
			e.sched.Enqueue(job)
			e.queued[job.ID] = ref
			e.dmu.Unlock()
		}
		return
	}
	t := sc.Proc.Task(ts.Name)
	e.emit(Event{Kind: EvTaskUnplaceable, Instance: in.ID, Scope: sc.ID, Task: ts.Name,
		Detail: fmt.Sprintf("required nodes %v are all down or unknown", job.Nodes)})
	e.failTask(in, sc, t, ts, fmt.Errorf("required nodes %v are all down or unknown", job.Nodes))
	e.endTurn(in, mu, false)
}

// dispatch starts one popped job on its chosen node. It returns false when
// the drain loop should stop (cluster capacity changed under us).
func (e *Engine) dispatch(job sched.Job, node string, ref *queuedRef) bool {
	in, sc, ts := ref.inst, ref.sc, ref.ts
	mu := e.shardFor(in.ID)
	mu.Lock()
	if cur, live := e.lookup(in.ID); !live || cur != in {
		// Crash wiped (or recovery rebuilt) the instance since the pop;
		// the popped job died with its incarnation.
		mu.Unlock()
		return true
	}
	e.beginTurn(in)
	// Re-validate under the shard: since the pop, the instance may have
	// been suspended or aborted, the scope torn down by a sphere abort,
	// or the task superseded by a newer attempt.
	if sc.defunct || ts.Status != TaskReady || ts.Job != job.ID || in.Status != InstanceRunning {
		requeue := !sc.defunct && ts.Status == TaskReady && ts.Job == job.ID &&
			in.Status == InstanceSuspended
		e.endTurn(in, mu, false)
		if requeue {
			// Suspended after the pop: keep it queued for Resume.
			e.dmu.Lock()
			e.sched.Enqueue(job)
			e.queued[job.ID] = ref
			e.dmu.Unlock()
		}
		return true
	}
	// Reserve the running slot before Launch: the local executor can
	// deliver the completion from its worker goroutine before Launch even
	// returns.
	e.dmu.Lock()
	ref.node = node
	e.running[job.ID] = ref
	e.dmu.Unlock()
	t := sc.Proc.Task(ts.Name)
	l := Launch{
		Job:     cluster.JobID(job.ID),
		Node:    node,
		Cost:    job.Cost,
		Nice:    in.Nice,
		Program: t.Program,
		Inputs:  ts.Inputs,
		Ctx: ProgramCtx{
			Instance: in.ID,
			Task:     ts.Name,
			Attempt:  ts.Attempts,
			Node:     node,
		},
		Run: e.programThunk(ref, node),
	}
	if t.Timeout > 0 {
		l.Timeout = time.Duration(t.Timeout * float64(time.Second))
	}
	//bioopera:allow locksafe reserve-then-launch must be atomic per job; Executor.Launch is contractually non-blocking (goroutine spawn locally, one JSON frame remotely)
	if err := e.opts.Executor.Launch(l); err != nil {
		// Capacity changed under us; requeue and stop draining.
		e.dmu.Lock()
		delete(e.running, job.ID)
		ref.node = ""
		e.sched.Enqueue(job)
		e.queued[job.ID] = ref
		e.dmu.Unlock()
		e.endTurn(in, mu, false)
		return false
	}
	ts.Status = TaskRunning
	ts.Node = node
	ts.StartedAt = e.now()
	e.touchTask(in, sc, ts)
	e.emit(Event{Kind: EvTaskDispatched, Instance: in.ID, Scope: sc.ID,
		Task: ts.Name, Node: node})
	e.persist(in)
	if l.Timeout > 0 {
		e.armTimeout(job.ID, l.Timeout)
	}
	e.endTurn(in, mu, false)
	return true
}

// armTimeout starts the TIMEOUT clock for a job just launched. The cancel
// hook lands in the running ref under dmu; if the completion already beat
// us there the timer is cancelled on the spot.
func (e *Engine) armTimeout(jobID string, d time.Duration) {
	cancel := e.opts.After(d, func() { e.timeoutJob(jobID) })
	e.dmu.Lock()
	if ref, ok := e.running[jobID]; ok {
		ref.cancelTimeout = cancel
		cancel = nil
	}
	e.dmu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// timeoutJob fires when a running attempt exceeds its TIMEOUT: the job is
// killed, and the resulting ErrJobKilled completion requeues the activity
// through the normal infrastructure-failure path — a hung activity fails
// over exactly like one on a crashed node, without consuming a retry.
func (e *Engine) timeoutJob(jobID string) {
	e.dmu.Lock()
	ref, ok := e.running[jobID]
	var node string
	if ok {
		node = ref.node
		ref.cancelTimeout = nil
	}
	e.dmu.Unlock()
	if !ok {
		return // completed (or was killed) first
	}
	e.emit(Event{Kind: EvTaskTimeout, Instance: ref.inst.ID, Scope: ref.sc.ID,
		Task: ref.ts.Name, Node: node, Detail: "attempt exceeded TIMEOUT"})
	e.opts.Executor.Kill(cluster.JobID(jobID), node)
}

// HandleCompletion receives a job outcome from the cluster. Infrastructure
// failures (node crash, kill) requeue the activity without consuming
// retries — checkpointing is at activity granularity, so only the failed
// activity's work is lost (§3.3). Program successes run the external
// binding to produce outputs. Safe for concurrent callers; completions of
// the same instance serialize on its shard.
func (e *Engine) HandleCompletion(c cluster.Completion) {
	e.dmu.Lock()
	ref, ok := e.running[string(c.Job)]
	var cancelTimeout func()
	if ok {
		delete(e.running, string(c.Job))
		ref.node = ""
		cancelTimeout = ref.cancelTimeout
		ref.cancelTimeout = nil
	}
	e.dmu.Unlock()
	if cancelTimeout != nil {
		cancelTimeout()
	}
	if !ok {
		// Stale completion from before a server crash: the result is
		// discarded (the activity was already requeued), but the CPU
		// slot it occupied is now free.
		e.Pump()
		return
	}
	in, sc, ts := ref.inst, ref.sc, ref.ts
	mu := e.shardFor(in.ID)
	mu.Lock()
	if cur, live := e.lookup(in.ID); !live || cur != in {
		// The engine crashed (or recovery rebuilt the instance) between
		// the running-map pop and this turn: the completion belongs to a
		// previous incarnation and must not navigate it further.
		mu.Unlock()
		e.Pump()
		return
	}
	e.beginTurn(in)
	if sc.defunct {
		// The scope was torn down by a sphere abort; the slot is
		// free, the result is void.
		e.endTurn(in, mu, true)
		return
	}
	t := sc.Proc.Task(ts.Name)
	ts.CPUTime += c.CPUTime
	in.CPU += c.CPUTime
	e.touchTask(in, sc, ts)
	if c.Err == nil && ref.job.Key != "" {
		// Feed the completed activity's actual CPU time back into the
		// scheduler's cost predictor (BioWorkbench-style history). In
		// simulation CPUTime is virtual, so the calibration — and every
		// decision derived from it — stays deterministic.
		e.dmu.Lock()
		e.sched.Observe(ref.job.Key, ref.job.Cost, c.CPUTime)
		e.dmu.Unlock()
	}

	if in.Status == InstanceFailed || in.Status == InstanceDone {
		e.endTurn(in, mu, false)
		return
	}

	if c.Err != nil {
		// Infrastructure failure: the PEC reported a crash, or the
		// job was killed (suspend/migration). Requeue unconditionally.
		in.Failures++
		in.Retries++
		ts.Status = TaskReady
		ts.Node = ""
		e.emit(Event{Kind: EvTaskRetried, Instance: in.ID, Scope: sc.ID, Task: ts.Name,
			Node: c.Node, Detail: fmt.Sprintf("infrastructure: %v", c.Err)})
		e.requeue(in, sc, t, ts)
		e.endTurn(in, mu, true)
		return
	}

	// Program outcome: either the executor ran the program on the node
	// (local pool) or the engine runs it now (simulated cluster).
	outputs, progErr := c.Outputs, c.ProgramErr
	if outputs == nil && progErr == nil {
		prog, ok := e.opts.Library.Lookup(t.Program)
		if !ok {
			e.failInstance(in, fmt.Sprintf("program %q vanished from the library", t.Program))
			e.endTurn(in, mu, false)
			return
		}
		outputs, progErr = prog.Run(ProgramCtx{
			Instance: in.ID,
			Task:     ts.Name,
			Attempt:  ts.Attempts,
			Node:     c.Node,
		}, ts.Inputs)
	}
	if progErr != nil {
		e.handleProgramFailure(in, sc, t, ts, progErr)
		e.endTurn(in, mu, true)
		return
	}
	in.Activities++
	e.finishTask(in, sc, t, ts, outputs)
	e.endTurn(in, mu, true)
}

// programThunk packages a task's external binding for node-side execution.
func (e *Engine) programThunk(ref *queuedRef, node string) func() (map[string]ocr.Value, error) {
	t := ref.sc.Proc.Task(ref.ts.Name)
	prog, ok := e.opts.Library.Lookup(t.Program)
	if !ok {
		name := t.Program
		return func() (map[string]ocr.Value, error) {
			return nil, fmt.Errorf("program %q not registered", name)
		}
	}
	ctx := ProgramCtx{
		Instance: ref.inst.ID,
		Task:     ref.ts.Name,
		Attempt:  ref.ts.Attempts,
		Node:     node,
	}
	inputs := ref.ts.Inputs
	return func() (map[string]ocr.Value, error) { return prog.Run(ctx, inputs) }
}

// Migrate applies a kill-and-restart migration policy once: running jobs
// on overloaded nodes are killed and go back through the queue, where the
// placement policy sends them to lightly loaded nodes (§5.4's discussed
// strategy). It returns how many jobs were killed.
func (e *Engine) Migrate(p sched.MigrationPolicy) int {
	e.dmu.Lock()
	ids := make([]string, 0, len(e.running))
	for id := range e.running {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	cands := make([]sched.Candidate, 0, len(ids))
	for _, id := range ids {
		ref := e.running[id]
		if ref.inst.statusNow() != InstanceRunning {
			continue
		}
		cands = append(cands, sched.Candidate{Job: id, Node: ref.node})
	}
	e.dmu.Unlock()
	kills := p.Decide(cands, e.opts.Executor.Nodes())
	for _, k := range kills {
		e.dmu.Lock()
		ref := e.running[k.Job]
		e.dmu.Unlock()
		if ref == nil {
			continue
		}
		e.opts.Executor.Kill(cluster.JobID(k.Job), k.Node)
	}
	return len(kills)
}

// Preempt applies a preemption sweep once: queued high-priority jobs that
// have starved past the policy's wait, and that no free slot can take,
// reclaim nodes from strictly lower-priority running work. Victims are
// killed through the executor; their ErrJobKilled completions requeue
// them via the ordinary infrastructure-failure path — checkpointing is at
// activity granularity (§3.3), so each victim loses at most one
// activity's work and consumes no retry. It returns how many jobs were
// killed. Like Migrate, it is driven explicitly (a timer in real
// runtimes, a virtual-time event in simulation), so runs that never call
// it keep their traces byte-identical.
func (e *Engine) Preempt(p sched.Preemptor) int {
	e.dmu.Lock()
	queued := e.sched.Jobs()
	ids := make([]string, 0, len(e.running))
	for id := range e.running {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	running := make([]sched.Running, 0, len(ids))
	for _, id := range ids {
		ref := e.running[id]
		if ref.inst.statusNow() != InstanceRunning {
			continue
		}
		running = append(running, sched.Running{
			Job: id, Node: ref.node,
			Priority: ref.job.Priority, Tenant: ref.job.Tenant,
		})
	}
	e.dmu.Unlock()
	kills := p.Decide(e.now(), queued, running, e.opts.Executor.Nodes())
	for _, k := range kills {
		e.dmu.Lock()
		ref := e.running[k.Job]
		e.dmu.Unlock()
		if ref == nil {
			continue
		}
		e.opts.Executor.Kill(cluster.JobID(k.Job), k.Node)
	}
	e.metrics.preempted(len(kills))
	return len(kills)
}

// Crash simulates a BioOpera server crash (§5.4 event 3): all volatile
// state vanishes. The store survives; Recover rebuilds from it. Jobs still
// running on the cluster become orphans whose completions are ignored.
//
// Crash first quiesces the engine by taking every shard (in index order —
// no other path holds two shards), so no navigation turn straddles the
// wipe: a real crash kills the whole server, not half a state transition.
func (e *Engine) Crash() {
	for i := range e.shards {
		e.shards[i].Lock()
	}
	defer func() {
		for i := range e.shards {
			e.shards[i].Unlock()
		}
	}()
	// With every shard held no new checkpoints can be produced; wait for
	// in-flight flushes to pass their commit gates so no store batch from
	// the old incarnation lands after the wipe. (Flushers never need a
	// shard before their gate advances, so this cannot deadlock.)
	e.emu.RLock()
	ins := make([]*Instance, 0, len(e.instances))
	for _, in := range e.instances {
		ins = append(ins, in)
	}
	e.emu.RUnlock()
	for _, in := range ins {
		in.quiesceCkpts()
	}
	e.emu.Lock()
	e.dmu.Lock()
	e.instances = make(map[string]*Instance)
	e.order = nil
	e.sched.Reset()
	e.queued = make(map[string]*queuedRef)
	e.running = make(map[string]*queuedRef)
	e.waiting = make(map[string][]*queuedRef)
	e.signals = make(map[string][]map[string]ocr.Value)
	e.dmu.Unlock()
	e.emu.Unlock()
}

// IsInfraError reports whether an error is an infrastructure failure (as
// opposed to a program failure).
func IsInfraError(err error) bool {
	return errors.Is(err, cluster.ErrNodeFailed) || errors.Is(err, cluster.ErrJobKilled)
}
