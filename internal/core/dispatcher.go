package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/ocr"
	"bioopera/internal/sched"
)

// This file is the dispatcher (§3.2): it takes activities from the
// activity queue, asks the scheduling policy for a node, and launches them
// through the cluster's program execution clients. Completions flow back
// through HandleCompletion, which also implements the recovery semantics
// for node failures.

// Pump dispatches as many queued activities as the cluster can take.
// Drivers call it after anything that may have freed capacity.
func (e *Engine) Pump() {
	if e.paused {
		return
	}
	for {
		nodes := e.opts.Executor.Nodes()
		job, node, ok := e.queue.PopWhere(func(j sched.Job) (string, bool) {
			ref := e.queued[j.ID]
			if ref == nil || ref.inst.Status != InstanceRunning {
				return "", false // suspended instances stay queued
			}
			return e.policy.Pick(j, nodes)
		})
		if !ok {
			return
		}
		ref := e.queued[job.ID]
		delete(e.queued, job.ID)
		var err error
		if pr, ok := e.opts.Executor.(ProgramRunner); ok {
			err = pr.StartWithRun(cluster.JobID(job.ID), node, job.Cost, ref.inst.Nice, e.programThunk(ref, node))
		} else {
			err = e.opts.Executor.Start(cluster.JobID(job.ID), node, job.Cost, ref.inst.Nice)
		}
		if err != nil {
			// Capacity changed under us; requeue and stop.
			e.queue.Push(job)
			e.queued[job.ID] = ref
			return
		}
		ref.ts.Status = TaskRunning
		ref.ts.Node = node
		ref.ts.StartedAt = e.now()
		e.running[job.ID] = ref
		e.touch(ref.sc)
		e.emit(Event{Kind: EvTaskDispatched, Instance: ref.inst.ID, Scope: ref.sc.ID,
			Task: ref.ts.Name, Node: node})
		e.persist(ref.inst)
	}
}

// HandleCompletion receives a job outcome from the cluster. Infrastructure
// failures (node crash, kill) requeue the activity without consuming
// retries — checkpointing is at activity granularity, so only the failed
// activity's work is lost (§3.3). Program successes run the external
// binding to produce outputs.
func (e *Engine) HandleCompletion(c cluster.Completion) {
	ref, ok := e.running[string(c.Job)]
	if !ok {
		// Stale completion from before a server crash: the result is
		// discarded (the activity was already requeued), but the CPU
		// slot it occupied is now free.
		e.Pump()
		return
	}
	delete(e.running, string(c.Job))
	in, sc, ts := ref.inst, ref.sc, ref.ts
	if sc.defunct {
		// The scope was torn down by a sphere abort; the slot is
		// free, the result is void.
		e.Pump()
		return
	}
	t := sc.Proc.Task(ts.Name)
	ts.CPUTime += c.CPUTime
	in.CPU += c.CPUTime
	e.touch(sc)

	if in.Status == InstanceFailed || in.Status == InstanceDone {
		return
	}

	if c.Err != nil {
		// Infrastructure failure: the PEC reported a crash, or the
		// job was killed (suspend/migration). Requeue unconditionally.
		in.Failures++
		in.Retries++
		ts.Status = TaskReady
		ts.Node = ""
		e.emit(Event{Kind: EvTaskRetried, Instance: in.ID, Scope: sc.ID, Task: ts.Name,
			Node: c.Node, Detail: fmt.Sprintf("infrastructure: %v", c.Err)})
		e.requeue(in, sc, t, ts)
		e.Pump()
		return
	}

	// Program outcome: either the executor ran the program on the node
	// (local pool) or the engine runs it now (simulated cluster).
	outputs, progErr := c.Outputs, c.ProgramErr
	if outputs == nil && progErr == nil {
		prog, ok := e.opts.Library.Lookup(t.Program)
		if !ok {
			e.failInstance(in, fmt.Sprintf("program %q vanished from the library", t.Program))
			return
		}
		outputs, progErr = prog.Run(ProgramCtx{
			Instance: in.ID,
			Task:     ts.Name,
			Attempt:  ts.Attempts,
			Node:     c.Node,
		}, ts.Inputs)
	}
	if progErr != nil {
		e.handleProgramFailure(in, sc, t, ts, progErr)
		e.Pump()
		return
	}
	in.Activities++
	e.finishTask(in, sc, t, ts, outputs)
	e.Pump()
}

// ProgramRunner is implemented by executors that execute the external
// binding themselves (on a worker) instead of letting the engine run it at
// completion time.
type ProgramRunner interface {
	// StartWithRun launches a job whose program is the given thunk.
	StartWithRun(id cluster.JobID, node string, cost time.Duration, nice bool,
		run func() (map[string]ocr.Value, error)) error
}

// programThunk packages a task's external binding for node-side execution.
func (e *Engine) programThunk(ref *queuedRef, node string) func() (map[string]ocr.Value, error) {
	t := ref.sc.Proc.Task(ref.ts.Name)
	prog, ok := e.opts.Library.Lookup(t.Program)
	if !ok {
		name := t.Program
		return func() (map[string]ocr.Value, error) {
			return nil, fmt.Errorf("program %q not registered", name)
		}
	}
	ctx := ProgramCtx{
		Instance: ref.inst.ID,
		Task:     ref.ts.Name,
		Attempt:  ref.ts.Attempts,
		Node:     node,
	}
	inputs := ref.ts.Inputs
	return func() (map[string]ocr.Value, error) { return prog.Run(ctx, inputs) }
}

// Migrate applies a kill-and-restart migration policy once: running jobs
// on overloaded nodes are killed and go back through the queue, where the
// placement policy sends them to lightly loaded nodes (§5.4's discussed
// strategy). It returns how many jobs were killed.
func (e *Engine) Migrate(p sched.MigrationPolicy) int {
	ids := make([]string, 0, len(e.running))
	for id := range e.running {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	cands := make([]sched.Candidate, 0, len(ids))
	for _, id := range ids {
		ref := e.running[id]
		if ref.inst.Status != InstanceRunning {
			continue
		}
		cands = append(cands, sched.Candidate{Job: id, Node: ref.ts.Node})
	}
	kills := p.Decide(cands, e.opts.Executor.Nodes())
	for _, k := range kills {
		ref := e.running[k.Job]
		if ref == nil {
			continue
		}
		e.opts.Executor.Kill(cluster.JobID(k.Job), k.Node)
	}
	return len(kills)
}

// Crash simulates a BioOpera server crash (§5.4 event 3): all volatile
// state vanishes. The store survives; Recover rebuilds from it. Jobs still
// running on the cluster become orphans whose completions are ignored.
func (e *Engine) Crash() {
	e.instances = make(map[string]*Instance)
	e.order = nil
	e.queue = sched.Queue{}
	e.queued = make(map[string]*queuedRef)
	e.running = make(map[string]*queuedRef)
	e.waiting = make(map[string][]*queuedRef)
	e.signals = make(map[string][]map[string]ocr.Value)
}

// IsInfraError reports whether an error is an infrastructure failure (as
// opposed to a program failure).
func IsInfraError(err error) bool {
	return errors.Is(err, cluster.ErrNodeFailed) || errors.Is(err, cluster.ErrJobKilled)
}
