package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/store"
)

// chainSrc is a pure activity chain: no blocks, no parallel expansion, so
// every (instance, task) must see exactly one EvTaskEnded — any second one
// is a duplicated completion, any missing one is a lost completion.
const chainSrc = `
PROCESS Chain {
  INPUT x;
  OUTPUT r;
  ACTIVITY S1 { CALL test.inc(v = x);  OUT out; MAP out -> w1; }
  ACTIVITY S2 { CALL test.inc(v = w1); OUT out; MAP out -> w2; }
  ACTIVITY S3 { CALL test.inc(v = w2); OUT out; MAP out -> w3; }
  ACTIVITY S4 { CALL test.inc(v = w3); OUT out; MAP out -> w4; }
  ACTIVITY S5 { CALL test.inc(v = w4); OUT out; MAP out -> r; }
  S1 -> S2; S2 -> S3; S3 -> S4; S4 -> S5;
}
`

// taskEndCounter counts EvTaskEnded per (instance, scope, task).
type taskEndCounter struct {
	mu    sync.Mutex
	ended map[string]int
}

func newTaskEndCounter() *taskEndCounter {
	return &taskEndCounter{ended: make(map[string]int)}
}

func (c *taskEndCounter) observe(ev Event) {
	if ev.Kind != EvTaskEnded {
		return
	}
	c.mu.Lock()
	c.ended[ev.Instance+"|"+ev.Scope+"|"+ev.Task]++
	c.mu.Unlock()
}

// checkExactlyOnce asserts every counted task ended exactly once and that
// each listed instance ended all five chain tasks.
func (c *taskEndCounter) checkExactlyOnce(t *testing.T, ids []string) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, n := range c.ended {
		if n != 1 {
			t.Errorf("task %s ended %d times, want exactly 1", key, n)
		}
	}
	for _, id := range ids {
		for i := 1; i <= 5; i++ {
			key := fmt.Sprintf("%s||S%d", id, i)
			if c.ended[key] != 1 {
				t.Errorf("task %s ended %d times, want 1 (lost completion)", key, c.ended[key])
			}
		}
	}
}

func incLibrary(t *testing.T, delay time.Duration) *Library {
	t.Helper()
	lib := NewLibrary()
	if err := lib.RegisterFunc("test.inc", func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		time.Sleep(delay)
		return map[string]ocr.Value{"out": ocr.Num(args["v"].AsNum() + 1)}, nil
	}); err != nil {
		t.Fatal(err)
	}
	return lib
}

// TestConcurrentInstancesStress launches many instances from several
// goroutines against the worker-pool executor and checks that every
// instance completes with the right result and that no completion was lost
// or delivered twice.
func TestConcurrentInstancesStress(t *testing.T) {
	counter := newTaskEndCounter()
	rt, err := NewLocalRuntime(LocalConfig{
		Workers: 4,
		Library: incLibrary(t, time.Millisecond),
		OnEvent: counter.observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.RegisterTemplateSource(chainSrc); err != nil {
		t.Fatal(err)
	}

	const goroutines = 4
	const perG = 3 // 12 instances total
	ids := make([]string, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				slot := g*perG + i
				id, err := rt.StartProcess("Chain",
					map[string]ocr.Value{"x": ocr.Num(float64(slot * 10))}, StartOptions{})
				if err != nil {
					t.Errorf("StartProcess: %v", err)
					return
				}
				ids[slot] = id
			}
		}(g)
	}
	wg.Wait()

	for slot, id := range ids {
		if id == "" {
			continue
		}
		in, err := rt.Wait(id, 30*time.Second)
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		if in.Status != InstanceDone {
			t.Fatalf("instance %s: %s (%s)", id, in.Status, in.FailureReason)
		}
		if got := in.Outputs["r"].AsNum(); got != float64(slot*10+5) {
			t.Errorf("instance %s result = %v, want %d", id, got, slot*10+5)
		}
		if in.Activities != 5 {
			t.Errorf("instance %s activities = %d, want 5", id, in.Activities)
		}
	}
	counter.checkExactlyOnce(t, ids)
}

// TestConcurrentCrashRecover crashes the engine while several instances
// run concurrently on the worker pool, recovers from the store, and checks
// that every instance still finishes correctly with no lost or duplicated
// completions: work checkpointed before the crash is not redone, work lost
// in the crash is redone exactly once.
func TestConcurrentCrashRecover(t *testing.T) {
	counter := newTaskEndCounter()
	st := store.NewMem()
	rt, err := NewLocalRuntime(LocalConfig{
		Workers: 4,
		Store:   st,
		Library: incLibrary(t, 2*time.Millisecond),
		OnEvent: counter.observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.RegisterTemplateSource(chainSrc); err != nil {
		t.Fatal(err)
	}

	const goroutines = 4
	const perG = 2 // 8 instances total
	ids := make([]string, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				slot := g*perG + i
				id, err := rt.StartProcess("Chain",
					map[string]ocr.Value{"x": ocr.Num(float64(slot * 10))}, StartOptions{})
				if err != nil {
					t.Errorf("StartProcess: %v", err)
					return
				}
				ids[slot] = id
			}
		}(g)
	}
	wg.Wait()

	// Let the fleet get partway through, then pull the plug.
	time.Sleep(8 * time.Millisecond)
	rt.Do(func(e *Engine) { e.Crash() })
	// Orphan workers drain; their completions must be discarded.
	time.Sleep(20 * time.Millisecond)
	rt.Do(func(e *Engine) {
		if _, err := e.Recover(); err != nil {
			t.Errorf("Recover: %v", err)
		}
	})

	for slot, id := range ids {
		if id == "" {
			continue
		}
		in, err := rt.Wait(id, 30*time.Second)
		if errors.Is(err, ErrUnknownInstance) {
			// Finished and archived before the crash: verify from
			// history instead.
			v, ok, gerr := st.Get(store.History, "inst/"+id)
			if gerr != nil || !ok {
				t.Fatalf("instance %s neither live nor archived (%v)", id, gerr)
			}
			var meta instanceDTO
			if err := json.Unmarshal(v, &meta); err != nil {
				t.Fatal(err)
			}
			if meta.Status != InstanceDone || meta.Outputs["r"].AsNum() != float64(slot*10+5) {
				t.Errorf("archived instance %s: status=%s outputs=%v", id, meta.Status, meta.Outputs)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		if in.Status != InstanceDone {
			t.Fatalf("instance %s: %s (%s)", id, in.Status, in.FailureReason)
		}
		if got := in.Outputs["r"].AsNum(); got != float64(slot*10+5) {
			t.Errorf("instance %s result = %v, want %d", id, got, slot*10+5)
		}
	}
	counter.checkExactlyOnce(t, ids)
}

// failingStore wraps a Store and fails every Batch once armed, so persist
// failures can be provoked deterministically.
type failingStore struct {
	store.Store
	mu    sync.Mutex
	armed bool
	fails int
}

func (f *failingStore) arm() {
	f.mu.Lock()
	f.armed = true
	f.mu.Unlock()
}

func (f *failingStore) Batch(ops []store.Op) error {
	f.mu.Lock()
	armed := f.armed
	if armed {
		f.fails++
	}
	f.mu.Unlock()
	if armed {
		return errors.New("store full")
	}
	return f.Store.Batch(ops)
}

// TestPersistErrorSurfaced checks that checkpoint failures are no longer
// silently dropped: they emit EvPersistError on the event stream, invoke
// the OnError hook, and do not stop in-memory execution.
func TestPersistErrorSurfaced(t *testing.T) {
	fs := &failingStore{Store: store.NewMem()}
	var evMu sync.Mutex
	persistEvents := 0
	var errs []error
	rt, err := NewLocalRuntime(LocalConfig{
		Workers: 2,
		Store:   fs,
		Library: incLibrary(t, 0),
		OnEvent: func(ev Event) {
			if ev.Kind == EvPersistError {
				evMu.Lock()
				persistEvents++
				evMu.Unlock()
			}
		},
		OnError: func(err error) {
			evMu.Lock()
			errs = append(errs, err)
			evMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.RegisterTemplateSource(chainSrc); err != nil {
		t.Fatal(err)
	}
	fs.arm()
	id, err := rt.StartProcess("Chain", map[string]ocr.Value{"x": ocr.Num(1)}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := rt.Wait(id, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != InstanceDone || in.Outputs["r"].AsNum() != 6 {
		t.Fatalf("instance with failing store: %s outputs=%v", in.Status, in.Outputs)
	}
	evMu.Lock()
	defer evMu.Unlock()
	if persistEvents == 0 {
		t.Error("no EvPersistError emitted despite failing store")
	}
	if len(errs) == 0 {
		t.Error("OnError hook never invoked despite failing store")
	}
	for _, e := range errs {
		if e.Error() == "" {
			t.Error("OnError received empty error")
		}
	}
}
