package core

import (
	"fmt"
	"sort"
	"strings"

	"bioopera/internal/ocr"
)

// This file implements lineage tracking (§6: "lineage tracking is done
// automatically and all dependencies are persistently recorded. This makes
// it possible for the system to recompute processes as data inputs or
// algorithms change").
//
// Lineage is derived from the executed instance: which task produced each
// whiteboard item (through its mapping phase) and which items each task
// read (through its argument bindings and activation conditions). Data
// items are addressed as "scope::name" with "" for the root scope.

// LineageNode describes one data item's provenance.
type LineageNode struct {
	// Item is the qualified data item ("scope::name").
	Item string
	// Producer is the qualified task that wrote it ("scope::task"),
	// or "" for process inputs and DATA initializers.
	Producer string
	// Consumers are the qualified tasks that read it.
	Consumers []string
}

// Lineage is the provenance graph of one instance.
type Lineage struct {
	// Items maps qualified item names to their provenance.
	Items map[string]*LineageNode
	// Reads maps qualified task names to the items they read.
	Reads map[string][]string
	// Writes maps qualified task names to the items they wrote.
	Writes map[string][]string
	// Programs maps qualified task names to their external binding, so
	// "which tasks ran algorithm X" is answerable.
	Programs map[string]string
}

func qualify(scopeID, name string) string { return scopeID + "::" + name }

// Lineage builds the provenance graph of an instance (running or
// finished). It holds the instance's shard lock while reading, so the
// graph is a consistent snapshot even under concurrent navigation.
func (e *Engine) Lineage(instanceID string) (*Lineage, error) {
	in, ok := e.lookup(instanceID)
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, instanceID)
	}
	mu := e.shardFor(instanceID)
	mu.Lock()
	if in.stub != nil {
		// Hydrate inside its own turn so the checkpoints it produces
		// flush, then re-take the shard for the graph read.
		e.beginTurn(in)
		err := e.hydrateLocked(in)
		e.endTurn(in, mu, false)
		if err != nil {
			return nil, err
		}
		mu.Lock()
	}
	defer mu.Unlock()
	lg := &Lineage{
		Items:    make(map[string]*LineageNode),
		Reads:    make(map[string][]string),
		Writes:   make(map[string][]string),
		Programs: make(map[string]string),
	}
	ids := make([]string, 0, len(in.scopes))
	for id := range in.scopes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		lg.addScope(in.scopes[id])
	}
	return lg, nil
}

func (lg *Lineage) item(name string) *LineageNode {
	n, ok := lg.Items[name]
	if !ok {
		n = &LineageNode{Item: name}
		lg.Items[name] = n
	}
	return n
}

// addScope records the reads/writes of every executed task of a scope.
func (lg *Lineage) addScope(sc *scope) {
	for _, t := range sc.Proc.Tasks {
		ts := sc.Tasks[t.Name]
		if ts == nil || ts.Status == TaskInactive || ts.Status == TaskDead {
			continue
		}
		taskQ := qualify(sc.ID, t.Name)
		if t.Program != "" {
			lg.Programs[taskQ] = t.Program
		}
		// Reads: names referenced by argument bindings.
		seen := map[string]bool{}
		for _, b := range t.Args {
			for _, r := range ocr.Refs(b.Expr) {
				if strings.Contains(r, ".") {
					// task.field reference: depends on that
					// task's output item.
					dot := strings.IndexByte(r, '.')
					src := qualify(sc.ID, "task:"+r[:dot])
					if !seen[src] {
						seen[src] = true
						lg.Reads[taskQ] = append(lg.Reads[taskQ], src)
						lg.item(src).Consumers = append(lg.item(src).Consumers, taskQ)
					}
					continue
				}
				item := qualify(sc.ID, r)
				if !seen[item] {
					seen[item] = true
					lg.Reads[taskQ] = append(lg.Reads[taskQ], item)
					lg.item(item).Consumers = append(lg.item(item).Consumers, taskQ)
				}
			}
		}
		// Writes: mapping targets plus the task's own output item.
		own := qualify(sc.ID, "task:"+t.Name)
		lg.Writes[taskQ] = append(lg.Writes[taskQ], own)
		lg.item(own).Producer = taskQ
		for _, m := range t.Maps {
			item := qualify(sc.ID, m.To)
			lg.Writes[taskQ] = append(lg.Writes[taskQ], item)
			lg.item(item).Producer = taskQ
		}
	}
}

// Producer returns the qualified task that produced a root-scope item, or
// "" when the item is a process input.
func (lg *Lineage) Producer(name string) string {
	if n, ok := lg.Items[qualify("", name)]; ok {
		return n.Producer
	}
	return ""
}

// Affected computes the transitive downstream closure of a root-scope
// data item: every task that must be recomputed if the item changes
// (directly or through intermediate items). Results are sorted.
func (lg *Lineage) Affected(name string) []string {
	return lg.affectedFrom(qualify("", name))
}

// AffectedByProgram computes the tasks to recompute if the named external
// program (algorithm) changes: the tasks bound to it plus everything
// downstream of their outputs (§6: "recompute processes as data inputs or
// algorithms change").
func (lg *Lineage) AffectedByProgram(program string) []string {
	seenTasks := map[string]bool{}
	var queue []string
	for task, prog := range lg.Programs {
		if prog == program {
			seenTasks[task] = true
			queue = append(queue, task)
		}
	}
	sort.Strings(queue)
	return lg.closure(queue, seenTasks)
}

func (lg *Lineage) affectedFrom(item string) []string {
	seenTasks := map[string]bool{}
	var queue []string
	if n, ok := lg.Items[item]; ok {
		for _, c := range n.Consumers {
			if !seenTasks[c] {
				seenTasks[c] = true
				queue = append(queue, c)
			}
		}
	}
	return lg.closure(queue, seenTasks)
}

// closure expands task → written items → consuming tasks until a fixpoint.
func (lg *Lineage) closure(queue []string, seenTasks map[string]bool) []string {
	for len(queue) > 0 {
		task := queue[0]
		queue = queue[1:]
		for _, item := range lg.Writes[task] {
			if n, ok := lg.Items[item]; ok {
				for _, c := range n.Consumers {
					if !seenTasks[c] {
						seenTasks[c] = true
						queue = append(queue, c)
					}
				}
			}
		}
	}
	out := make([]string, 0, len(seenTasks))
	for t := range seenTasks {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
