package core

import (
	"testing"

	"bioopera/internal/ocr"
)

const lineageSrc = `
PROCESS Pipe {
  INPUT raw;
  OUTPUT final;
  ACTIVITY Stage1 {
    CALL test.double(x = raw);
    OUT out;
    MAP out -> mid;
  }
  ACTIVITY Stage2 {
    CALL test.double(x = mid);
    OUT out;
    MAP out -> final;
  }
  ACTIVITY Side {
    CALL test.constant();
    OUT out;
    MAP out -> sidecar;
  }
  Stage1 -> Stage2;
  Stage1 -> Side;
}
`

func TestLineage(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, lineageSrc)
	id := start(t, rt, "Pipe", map[string]ocr.Value{"raw": ocr.Num(2)})
	rt.Run()
	finished(t, rt, id)

	lg, err := rt.Engine.Lineage(id)
	if err != nil {
		t.Fatal(err)
	}
	if got := lg.Producer("mid"); got != "::Stage1" {
		t.Fatalf("Producer(mid) = %q", got)
	}
	if got := lg.Producer("final"); got != "::Stage2" {
		t.Fatalf("Producer(final) = %q", got)
	}
	if got := lg.Producer("raw"); got != "" {
		t.Fatalf("Producer(raw) = %q, want \"\" (process input)", got)
	}

	// Changing raw affects Stage1 and transitively Stage2, but not the
	// constant Side activity.
	aff := lg.Affected("raw")
	want := []string{"::Stage1", "::Stage2"}
	if len(aff) != 2 || aff[0] != want[0] || aff[1] != want[1] {
		t.Fatalf("Affected(raw) = %v, want %v", aff, want)
	}

	// Changing mid affects only Stage2.
	aff = lg.Affected("mid")
	if len(aff) != 1 || aff[0] != "::Stage2" {
		t.Fatalf("Affected(mid) = %v", aff)
	}

	// Changing the algorithm test.double requires both stages, and
	// nothing else downstream of them that doesn't exist.
	aff = lg.AffectedByProgram("test.double")
	if len(aff) != 2 || aff[0] != "::Stage1" || aff[1] != "::Stage2" {
		t.Fatalf("AffectedByProgram = %v", aff)
	}
	// An algorithm used by a dead-end task.
	aff = lg.AffectedByProgram("test.constant")
	if len(aff) != 1 || aff[0] != "::Side" {
		t.Fatalf("AffectedByProgram(constant) = %v", aff)
	}

	if _, err := rt.Engine.Lineage("nope"); err == nil {
		t.Fatal("lineage of unknown instance")
	}
}

func TestLineageSkipsDeadTasks(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, branchSrc)
	id := start(t, rt, "Branch", map[string]ocr.Value{"queue_file": ocr.Str("q")})
	rt.Run()
	finished(t, rt, id)
	lg, err := rt.Engine.Lineage(id)
	if err != nil {
		t.Fatal(err)
	}
	// Generate was dead: it must not appear as a producer.
	if got := lg.Producer("qf"); got != "::UserIn" {
		t.Fatalf("Producer(qf) = %q, want ::UserIn (Generate was dead)", got)
	}
}
