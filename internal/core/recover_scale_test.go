package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// These tests cover recovery at scale: partial recovery around poisoned
// instances, lazy hydration of dormant instances, and the interned
// process-text garbage collector.

// sixXs is the stock parallel-block input; Par doubles each element.
func sixXs() ocr.Value {
	return ocr.List(ocr.Num(1), ocr.Num(2), ocr.Num(3), ocr.Num(4), ocr.Num(5), ocr.Num(6))
}

// TestRecoverOnePoisonedOfN: one corrupt instance must not sink the whole
// recovery. The damaged instance is skipped (and reported, both in the
// joined error and through OnError); every healthy sibling recovers and
// runs to completion.
func TestRecoverOnePoisonedOfN(t *testing.T) {
	st := store.NewMem()
	var onErrCalls atomic.Int64
	rt := newRuntime(t, SimConfig{Store: st, Options: Options{
		OnError: func(error) { onErrCalls.Add(1) },
	}})
	register(t, rt, parallelSrc)
	const n = 5
	var ids []string
	for i := 0; i < n; i++ {
		ids = append(ids, start(t, rt, "Par", map[string]ocr.Value{"xs": sixXs()}))
	}
	rt.RunUntil(sim.Time(500 * time.Millisecond))

	// Poison the middle instance's root scope-create record.
	bad := ids[2]
	if err := st.Put(store.Instance, "scopec/"+bad+"/-", []byte("{torn")); err != nil {
		t.Fatal(err)
	}
	rt.Engine.Crash()
	onErrCalls.Store(0)
	recovered, err := rt.Engine.Recover()
	if err == nil {
		t.Fatal("poisoned instance recovered silently")
	}
	if !strings.Contains(err.Error(), bad) {
		t.Fatalf("error does not name the poisoned instance %s: %v", bad, err)
	}
	if recovered != n-1 {
		t.Fatalf("recovered = %d, want %d", recovered, n-1)
	}
	if onErrCalls.Load() == 0 {
		t.Fatal("OnError was not invoked for the poisoned instance")
	}
	if _, ok := rt.Engine.Instance(bad); ok {
		t.Fatal("poisoned instance present in the registry")
	}
	// The survivors finish with correct results.
	rt.Run()
	for i, id := range ids {
		if i == 2 {
			continue
		}
		in := finished(t, rt, id)
		for j := 0; j < 6; j++ {
			if got := in.Outputs["doubled"].At(j).AsNum(); got != float64(2*(j+1)) {
				t.Fatalf("instance %s doubled[%d] = %v", id, j, got)
			}
		}
	}
}

// TestLazyRecoverSuspendedDeferred: under LazyRecovery a suspended
// instance comes back as a meta-only stub, hydrates on first touch into
// exactly the state an eager recovery builds, and then resumes to the
// correct result.
func TestLazyRecoverSuspendedDeferred(t *testing.T) {
	st := store.NewMem()
	rtA := newRuntime(t, SimConfig{Store: st})
	register(t, rtA, parallelSrc)
	id := start(t, rtA, "Par", map[string]ocr.Value{"xs": sixXs()})
	quiesceSuspended(t, rtA, id, sim.Time(1500*time.Millisecond))
	rtA.Engine.Crash()

	// Eager reference recovery, for the equivalence check below.
	rtC := newRuntime(t, SimConfig{Store: st})
	register(t, rtC, parallelSrc)
	if n, err := rtC.Engine.Recover(); err != nil || n != 1 {
		t.Fatalf("eager recover = %d, %v", n, err)
	}
	inC, _ := rtC.Engine.Instance(id)

	rtB := newRuntime(t, SimConfig{Store: st, Options: Options{LazyRecovery: true}})
	register(t, rtB, parallelSrc)
	if n, err := rtB.Engine.Recover(); err != nil || n != 1 {
		t.Fatalf("lazy recover = %d, %v", n, err)
	}
	if h, err := rtB.Engine.Hydrated(id); err != nil || h {
		t.Fatalf("Hydrated = %v, %v; want a dormant stub", h, err)
	}
	inB, ok := rtB.Engine.Instance(id)
	if !ok {
		t.Fatal("stub missing from the registry")
	}
	if inB.statusNow() != InstanceSuspended {
		t.Fatalf("stub status = %s, want Suspended", inB.statusNow())
	}

	// A read-side touch (Lineage) hydrates without changing status.
	if _, err := rtB.Engine.Lineage(id); err != nil {
		t.Fatal(err)
	}
	if h, _ := rtB.Engine.Hydrated(id); !h {
		t.Fatal("Lineage did not hydrate the stub")
	}
	if inB.statusNow() != InstanceSuspended {
		t.Fatalf("hydration changed status to %s", inB.statusNow())
	}
	if dumpB, dumpC := dumpInstance(t, inB), dumpInstance(t, inC); dumpB != dumpC {
		t.Fatalf("lazy hydration diverged from eager recovery:\n--- lazy ---\n%s\n--- eager ---\n%s", dumpB, dumpC)
	}

	if err := rtB.Engine.Resume(id); err != nil {
		t.Fatal(err)
	}
	rtB.Run()
	in := finished(t, rtB, id)
	for i := 0; i < 6; i++ {
		if got := in.Outputs["doubled"].At(i).AsNum(); got != float64(2*(i+1)) {
			t.Fatalf("doubled[%d] = %v", i, got)
		}
	}
}

// TestLazyRecoverActiveInstanceEager: LazyRecovery only defers dormant
// (suspended) instances. A Running instance interrupted mid-flight is
// rebuilt fully during Recover and finishes without any extra touch.
func TestLazyRecoverActiveInstanceEager(t *testing.T) {
	st := store.NewMem()
	rtA := newRuntime(t, SimConfig{Store: st})
	register(t, rtA, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 12; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rtA, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})
	rtA.RunUntil(sim.Time(1300 * time.Millisecond))
	rtA.Engine.Crash()

	rtB := newRuntime(t, SimConfig{Store: st, Options: Options{LazyRecovery: true}})
	register(t, rtB, parallelSrc)
	if n, err := rtB.Engine.Recover(); err != nil || n != 1 {
		t.Fatalf("recover = %d, %v", n, err)
	}
	if h, err := rtB.Engine.Hydrated(id); err != nil || !h {
		t.Fatalf("Hydrated = %v, %v; a Running instance must recover eagerly", h, err)
	}
	rtB.Run()
	in := finished(t, rtB, id)
	for i := 0; i < 12; i++ {
		if got := in.Outputs["doubled"].At(i).AsNum(); got != float64(2*i) {
			t.Fatalf("doubled[%d] = %v", i, got)
		}
	}
}

// TestLazyRecoverCorruptStubSurfacesOnResume: lazy recovery defers decode
// errors to hydration time. A corrupt delta record inside a stub fails the
// first touch with a hydration error, leaves the stub intact (so the
// failure is stable, not state-corrupting), and the same store fails
// immediately under eager recovery.
func TestLazyRecoverCorruptStubSurfacesOnResume(t *testing.T) {
	st := store.NewMem()
	rtA := newRuntime(t, SimConfig{Store: st})
	register(t, rtA, parallelSrc)
	id := start(t, rtA, "Par", map[string]ocr.Value{"xs": sixXs()})
	quiesceSuspended(t, rtA, id, sim.Time(1500*time.Millisecond))
	rtA.Engine.Crash()

	kvs, err := st.List(store.Instance)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, kv := range kvs {
		if strings.HasPrefix(kv.Key, "task/"+id+"/") {
			if err := st.Put(store.Instance, kv.Key, []byte("{torn")); err != nil {
				t.Fatal(err)
			}
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no task record to corrupt")
	}

	rtB := newRuntime(t, SimConfig{Store: st, Options: Options{LazyRecovery: true}})
	register(t, rtB, parallelSrc)
	if n, err := rtB.Engine.Recover(); err != nil || n != 1 {
		t.Fatalf("lazy recover = %d, %v; stub decode must be deferred", n, err)
	}
	for attempt := 0; attempt < 2; attempt++ {
		err := rtB.Engine.Resume(id)
		if err == nil || !strings.Contains(err.Error(), "hydrating") {
			t.Fatalf("Resume attempt %d = %v, want hydration error", attempt, err)
		}
		if h, _ := rtB.Engine.Hydrated(id); h {
			t.Fatalf("attempt %d: stub discarded despite failed hydration", attempt)
		}
	}
	in, ok := rtB.Engine.Instance(id)
	if !ok || in.statusNow() != InstanceSuspended {
		t.Fatalf("instance after failed hydration: ok=%v status=%v", ok, in.statusNow())
	}

	// Eager recovery of the same store hits the corruption up front.
	rtC := newRuntime(t, SimConfig{Store: st})
	register(t, rtC, parallelSrc)
	if n, err := rtC.Engine.Recover(); err == nil || n != 0 {
		t.Fatalf("eager recover = %d, %v; want immediate decode failure", n, err)
	}
}

// TestSweepProcsCollectsOrphans: a proc/ record whose hash no live scope
// references is deleted from the store and forgotten from procRefs; live
// hashes stay and appear in the manifest; terminal instances are skipped
// entirely.
func TestSweepProcsCollectsOrphans(t *testing.T) {
	st := store.NewMem()
	rt := newRuntime(t, SimConfig{Store: st})
	register(t, rt, parallelSrc)
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": sixXs()})
	rt.RunUntil(sim.Time(500 * time.Millisecond))

	eng := rt.Engine
	in, ok := eng.Instance(id)
	if !ok {
		t.Fatal("instance missing")
	}
	// Plant a dead interned text: on disk and in the ref set, but no scope
	// references it (the scenario a mid-run sphere abort leaves behind).
	const orphan = "00000000deadbeef"
	if err := st.Put(store.Instance, procKey(id, orphan), []byte("PROCESS Dead {}")); err != nil {
		t.Fatal(err)
	}
	mu := eng.shardFor(id)
	mu.Lock()
	in.procRefs[orphan] = true
	liveRefs := len(in.procRefs) - 1
	mu.Unlock()

	swept, manifest := eng.SweepProcs()
	if swept != 1 {
		t.Fatalf("swept = %d, want 1", swept)
	}
	if _, ok, _ := st.Get(store.Instance, procKey(id, orphan)); ok {
		t.Fatal("orphan proc record survived the sweep")
	}
	mu.Lock()
	_, stillRef := in.procRefs[orphan]
	gotRefs := len(in.procRefs)
	mu.Unlock()
	if stillRef || gotRefs != liveRefs {
		t.Fatalf("procRefs after sweep: orphan=%v len=%d want len=%d", stillRef, gotRefs, liveRefs)
	}
	for _, h := range manifest[id] {
		if h == orphan {
			t.Fatal("orphan listed as live in the manifest")
		}
	}
	if len(manifest[id]) != liveRefs {
		t.Fatalf("manifest lists %d live hashes, want %d", len(manifest[id]), liveRefs)
	}

	// A second sweep is a no-op, and the instance still runs to completion
	// on its surviving records.
	if swept, _ := eng.SweepProcs(); swept != 0 {
		t.Fatalf("second sweep = %d, want 0", swept)
	}
	rt.Run()
	finished(t, rt, id)

	// Terminal instances are invisible to the sweep.
	_, manifest = eng.SweepProcs()
	if _, present := manifest[id]; present {
		t.Fatal("terminal instance present in the sweep manifest")
	}
}
