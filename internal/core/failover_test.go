package core

import (
	"testing"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sim"
)

// TestFailoverMidRun exercises the §6 backup-server architecture: the
// primary engine dies mid-computation, a standby over the same store
// assumes control, and the process finishes with correct results.
func TestFailoverMidRun(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 12; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})

	var standby *Engine
	rt.Sim.At(sim.Time(1300*time.Millisecond), func(sim.Time) {
		var err error
		standby, err = rt.Failover()
		if err != nil {
			t.Errorf("failover: %v", err)
		}
	})
	rt.Run()
	if standby == nil {
		t.Fatal("failover never ran")
	}
	in, ok := standby.Instance(id)
	if !ok {
		t.Fatal("standby does not know the instance")
	}
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	got := in.Outputs["doubled"]
	for i := 0; i < 12; i++ {
		if got.At(i).AsNum() != float64(2*i) {
			t.Fatalf("results after failover = %v", got)
		}
	}
	// Completed work was not redone wholesale: at most the in-flight
	// jobs at failover time repeat.
	if in.Activities > 12+4 {
		t.Fatalf("too many re-runs after failover: %d", in.Activities)
	}
	// rt.Engine now points at the standby.
	if rt.Engine != standby {
		t.Fatal("runtime engine not swapped")
	}
}

// TestFailoverChain survives repeated failovers.
func TestFailoverChain(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 16; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})
	for _, at := range []time.Duration{800 * time.Millisecond, 1900 * time.Millisecond, 3100 * time.Millisecond} {
		rt.Sim.At(sim.Time(at), func(sim.Time) {
			if _, err := rt.Failover(); err != nil {
				t.Errorf("failover: %v", err)
			}
		})
	}
	rt.Run()
	in, ok := rt.Engine.Instance(id)
	if !ok {
		t.Fatal("instance lost across failovers")
	}
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	for i := 0; i < 16; i++ {
		if in.Outputs["doubled"].At(i).AsNum() != float64(2*i) {
			t.Fatalf("results corrupted: %v", in.Outputs["doubled"])
		}
	}
}
