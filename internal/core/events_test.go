package core

import (
	"errors"
	"testing"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// approvalSrc models the paper's human-in-the-loop scenario: compute,
// wait for the scientist to approve the intermediate result, then publish.
const approvalSrc = `
PROCESS Approval {
  INPUT x;
  OUTPUT published;
  ACTIVITY Compute {
    CALL test.double(x = x);
    OUT out;
    MAP out -> intermediate;
  }
  ACTIVITY Review {
    AWAIT "approved";
    OUT verdict, correction;
    MAP verdict -> verdict, correction -> correction;
  }
  ACTIVITY Publish {
    CALL test.echo(x = [intermediate, verdict, correction]);
    OUT out;
    MAP out -> published;
  }
  Compute -> Review;
  Review -> Publish;
}
`

func TestAwaitSignal(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, approvalSrc)
	id := start(t, rt, "Approval", map[string]ocr.Value{"x": ocr.Num(21)})

	// After Compute finishes, the instance must be blocked on the event.
	var awaiting []string
	rt.Sim.At(sim.Time(5*time.Second), func(sim.Time) {
		awaiting = rt.Engine.Awaiting(id)
		err := rt.Engine.Signal(id, "approved", map[string]ocr.Value{
			"verdict":    ocr.Str("ok"),
			"correction": ocr.Num(0),
		})
		if err != nil {
			t.Errorf("Signal: %v", err)
		}
	})
	rt.Run()
	if len(awaiting) != 1 || awaiting[0] != "approved" {
		t.Fatalf("Awaiting = %v", awaiting)
	}
	in := finished(t, rt, id)
	pub := in.Outputs["published"]
	if pub.Len() != 3 || pub.At(0).AsNum() != 42 || pub.At(1).AsStr() != "ok" {
		t.Fatalf("published = %v", pub)
	}
}

func TestSignalBeforeAwaitIsBuffered(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, approvalSrc)
	id := start(t, rt, "Approval", map[string]ocr.Value{"x": ocr.Num(1)})
	// Signal immediately — Compute (1s) has not finished, so nothing
	// awaits yet; the signal must be buffered and consumed later.
	if err := rt.Engine.Signal(id, "approved", map[string]ocr.Value{
		"verdict": ocr.Str("pre-approved"),
	}); err != nil {
		t.Fatal(err)
	}
	rt.Run()
	in := finished(t, rt, id)
	if in.Outputs["published"].At(1).AsStr() != "pre-approved" {
		t.Fatalf("published = %v", in.Outputs["published"])
	}
}

func TestSignalErrors(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, approvalSrc)
	if err := rt.Engine.Signal("ghost", "e", nil); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("err = %v", err)
	}
	id := start(t, rt, "Approval", map[string]ocr.Value{"x": ocr.Num(1)})
	rt.Sim.At(sim.Time(5*time.Second), func(sim.Time) {
		rt.Engine.Signal(id, "approved", nil)
	})
	rt.Run()
	finished(t, rt, id)
	if err := rt.Engine.Signal(id, "approved", nil); !errors.Is(err, ErrBadState) {
		t.Fatalf("signal to done instance = %v", err)
	}
}

func TestAwaitSurvivesServerCrash(t *testing.T) {
	st := store.NewMem()
	rt := newRuntime(t, SimConfig{Store: st})
	register(t, rt, approvalSrc)
	id := start(t, rt, "Approval", map[string]ocr.Value{"x": ocr.Num(5)})
	rt.Sim.At(sim.Time(3*time.Second), func(sim.Time) {
		// Compute done, Review awaiting. Crash the server.
		rt.Engine.Crash()
		if _, err := rt.Engine.Recover(); err != nil {
			t.Errorf("recover: %v", err)
		}
		// The wait must have been re-armed from the store.
		if got := rt.Engine.Awaiting(id); len(got) != 1 || got[0] != "approved" {
			t.Errorf("Awaiting after recovery = %v", got)
		}
	})
	rt.Sim.At(sim.Time(6*time.Second), func(sim.Time) {
		if err := rt.Engine.Signal(id, "approved", map[string]ocr.Value{
			"verdict": ocr.Str("post-crash"),
		}); err != nil {
			t.Errorf("signal: %v", err)
		}
	})
	rt.Run()
	in := finished(t, rt, id)
	if in.Outputs["published"].At(0).AsNum() != 10 {
		t.Fatalf("published = %v (recomputed wrongly?)", in.Outputs["published"])
	}
	if in.Outputs["published"].At(1).AsStr() != "post-crash" {
		t.Fatalf("published = %v", in.Outputs["published"])
	}
}

func TestAwaitRoundTripsThroughOCR(t *testing.T) {
	p, err := ocr.ParseProcess(approvalSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Task("Review").Await; got != "approved" {
		t.Fatalf("Await = %q", got)
	}
	text := ocr.Format(p)
	p2, err := ocr.ParseProcess(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if ocr.Format(p2) != text {
		t.Fatal("round trip unstable")
	}
	// Validation rejects CALL+AWAIT and neither.
	bad, _ := ocr.ParseProcess(`PROCESS P { ACTIVITY A { AWAIT "e"; CALL x.y(); } }`)
	if err := bad.Validate(); err == nil {
		t.Fatal("CALL+AWAIT accepted")
	}
	bad2, _ := ocr.ParseProcess(`PROCESS P { ACTIVITY A { OUT r; } }`)
	if err := bad2.Validate(); err == nil {
		t.Fatal("activity without CALL or AWAIT accepted")
	}
}

func TestAwaitInsideSphereAbort(t *testing.T) {
	// An AWAIT task parked inside a sphere that aborts must not leak:
	// the re-run sphere awaits again, and one signal satisfies only the
	// live wait.
	src := `
PROCESS GateSphere {
  OUTPUT result;
  BLOCK Tx ATOMIC {
    MAP done -> result;
    RETRY 1;
    OUTPUT done;
    ACTIVITY Gate {
      AWAIT "go";
      OUT v;
      MAP v -> gate_v;
    }
    ACTIVITY Work {
      CALL gate.failonce();
      OUT out;
      MAP out -> done;
    }
    Gate -> Work;
  }
}
`
	lib := testLibrary(t)
	failed := false
	lib.RegisterFunc("gate.failonce", func(_ ProgramCtx, _ map[string]ocr.Value) (map[string]ocr.Value, error) {
		if !failed {
			failed = true
			return nil, errors.New("first sphere attempt fails")
		}
		return map[string]ocr.Value{"out": ocr.Str("recovered")}, nil
	})
	rt := newRuntime(t, SimConfig{Library: lib})
	register(t, rt, src)
	id := start(t, rt, "GateSphere", nil)
	// First signal lets attempt 1 proceed; Work fails once → sphere
	// aborts → Gate re-awaits → second signal lets attempt 2 finish.
	rt.Sim.At(sim.Time(time.Second), func(sim.Time) {
		rt.Engine.Signal(id, "go", map[string]ocr.Value{"v": ocr.Int(1)})
	})
	rt.Sim.At(sim.Time(10*time.Second), func(sim.Time) {
		rt.Engine.Signal(id, "go", map[string]ocr.Value{"v": ocr.Int(2)})
	})
	rt.Run()
	in := finished(t, rt, id)
	if in.Outputs["result"].AsStr() != "recovered" {
		t.Fatalf("result = %v", in.Outputs["result"])
	}
}
