package core

import (
	"sort"
)

// Segment GC: interned process texts (proc/<inst>/<hash> records) are
// content-addressed and deduplicated, so the store cannot refcount them —
// only the engine knows which hashes the live scope tree still references.
// A sphere abort tears scopes down mid-run (archive cleans up orphans only
// at completion), so a month-long instance can accumulate dead interned
// bodies. SweepProcs reconciles the on-disk set against the live tree; the
// snapshot cadence runs it just before each compaction so the rewritten
// image already excludes the garbage.
//
// Deletes ride the instance's pendingDeletes through the per-instance
// commit gate — never a separate store batch — so a sweep can never
// overtake an in-flight checkpoint that still writes the record it is
// deleting, and a hash deleted here is forgotten from procRefs under the
// same shard lock, so a scope reusing the text re-interns it.

// SweepProcs deletes interned process texts no longer referenced by any
// live scope, across all running/suspended instances. It returns the
// number of records scheduled for deletion and the live-reference manifest
// (instance ID → sorted content hashes) describing what remains — the
// snapshot pipeline embeds it in the store image for audit.
//
// Lazy stubs are skipped: their records are untouched on disk and every
// interned text stays live until hydration. Terminal instances are skipped
// too — archive already moved their records to the history space.
func (e *Engine) SweepProcs() (int, map[string][]string) {
	e.emu.RLock()
	ins := make([]*Instance, 0, len(e.order))
	for _, id := range e.order {
		ins = append(ins, e.instances[id])
	}
	e.emu.RUnlock()

	swept := 0
	manifest := make(map[string][]string)
	for _, in := range ins {
		mu := e.shardFor(in.ID)
		mu.Lock()
		if in.Status == InstanceDone || in.Status == InstanceFailed {
			mu.Unlock()
			continue
		}
		if in.stub != nil {
			live := make([]string, 0, len(in.procRefs))
			for hash := range in.procRefs {
				live = append(live, hash)
			}
			sort.Strings(live)
			manifest[in.ID] = live
			mu.Unlock()
			continue
		}
		scs := make([]*scope, 0, len(in.scopes))
		for _, sc := range in.scopes {
			scs = append(scs, sc)
		}
		seen := make(map[string]bool, 2)
		for _, sc := range scs {
			seen[procHash(sc.procText())] = true
		}
		var live, orphans []string
		for hash := range in.procRefs {
			if seen[hash] {
				live = append(live, hash)
			} else {
				orphans = append(orphans, hash)
			}
		}
		sort.Strings(live)
		manifest[in.ID] = live
		if len(orphans) == 0 {
			mu.Unlock()
			continue
		}
		sort.Strings(orphans)
		e.beginTurn(in)
		for _, hash := range orphans {
			delete(in.procRefs, hash)
			in.pendingDeletes = append(in.pendingDeletes, procKey(in.ID, hash))
		}
		swept += len(orphans)
		e.persist(in)
		// endTurn flushes the delete batch through the commit gate before
		// returning, so a caller that snapshots right after the sweep
		// compacts a store with the garbage already gone.
		e.endTurn(in, mu, false)
	}
	e.metrics.procSwept(swept)
	return swept, manifest
}
