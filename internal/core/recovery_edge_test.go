package core

import (
	"strings"
	"testing"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// These tests exercise recovery edge cases: corrupt and partially missing
// store records, recovery of nested subprocess trees, and lineage over
// parallel scopes.

func TestRecoverCorruptInstanceRecord(t *testing.T) {
	st := store.NewMem()
	st.Put(store.Instance, "inst/p0001", []byte("{not json"))
	rt := newRuntime(t, SimConfig{Store: st})
	if _, err := rt.Engine.Recover(); err == nil {
		t.Fatal("corrupt instance record accepted")
	}
}

func TestRecoverCorruptScopeRecord(t *testing.T) {
	st := store.NewMem()
	rt := newRuntime(t, SimConfig{Store: st})
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(1)})
	rt.RunUntil(sim.Time(500 * time.Millisecond))
	// Corrupt the root scope's create record, then crash+recover.
	st.Put(store.Instance, "scopec/"+id+"/-", []byte("oops"))
	rt.Engine.Crash()
	if _, err := rt.Engine.Recover(); err == nil {
		t.Fatal("corrupt scope record accepted")
	}
}

func TestRecoverMissingRootScope(t *testing.T) {
	st := store.NewMem()
	rt := newRuntime(t, SimConfig{Store: st})
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(1)})
	rt.RunUntil(sim.Time(500 * time.Millisecond))
	// Drop every record of the root scope (create, dynamic, tasks) so the
	// instance metadata survives with no scope tree at all.
	kvs, _ := st.List(store.Instance)
	for _, kv := range kvs {
		if kv.Key != "inst/"+id {
			st.Delete(store.Instance, kv.Key)
		}
	}
	rt.Engine.Crash()
	if _, err := rt.Engine.Recover(); err == nil || !strings.Contains(err.Error(), "root scope") {
		t.Fatalf("missing root scope: err = %v", err)
	}
}

func TestRecoverNestedSubprocessMidRun(t *testing.T) {
	// A subprocess inside a parallel block, interrupted mid-flight:
	// recovery must rebuild the whole scope tree and finish correctly.
	src := subprocSrc + `
PROCESS Nest {
  INPUT xs;
  OUTPUT all;
  BLOCK Fan PARALLEL OVER xs AS x {
    MAP results -> all;
    OUTPUT r;
    SUBPROCESS S USES "Inner" {
      IN v = x;
      OUT w;
      MAP w -> r;
    }
  }
}
`
	st := store.NewMem()
	rt := newRuntime(t, SimConfig{Store: st})
	register(t, rt, src)
	var xs []ocr.Value
	for i := 0; i < 6; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id, err := rt.Engine.StartProcess("Nest", map[string]ocr.Value{"xs": ocr.List(xs...)}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Crash while some subprocess activities are mid-run.
	rt.Sim.At(sim.Time(1300*time.Millisecond), func(sim.Time) {
		rt.Engine.Crash()
		if n, err := rt.Engine.Recover(); err != nil || n != 1 {
			t.Errorf("recover = %d, %v", n, err)
		}
	})
	rt.Run()
	in, ok := rt.Engine.Instance(id)
	if !ok {
		t.Fatal("instance lost")
	}
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	for i := 0; i < 6; i++ {
		if in.Outputs["all"].At(i).AsNum() != float64(2*i) {
			t.Fatalf("all = %v", in.Outputs["all"])
		}
	}
}

func TestLineageAcrossParallelScopes(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	xs := ocr.List(ocr.Num(1), ocr.Num(2))
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": xs})
	rt.Run()
	finished(t, rt, id)
	lg, err := rt.Engine.Lineage(id)
	if err != nil {
		t.Fatal(err)
	}
	// The block produced the fan-out result in the root scope.
	if got := lg.Producer("doubled"); got != "::Fan" {
		t.Fatalf("Producer(doubled) = %q", got)
	}
	// Element scopes have their own producers.
	if n, ok := lg.Items["Fan[0]::y"]; !ok || n.Producer != "Fan[0]::D" {
		t.Fatalf("element lineage = %+v", n)
	}
	// Program index covers the element activities.
	aff := lg.AffectedByProgram("test.double")
	if len(aff) != 2 {
		t.Fatalf("AffectedByProgram = %v", aff)
	}
}

func TestRecoverIdempotentOnLiveEngine(t *testing.T) {
	// Calling Recover without a crash must not duplicate live instances.
	st := store.NewMem()
	rt := newRuntime(t, SimConfig{Store: st})
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(1)})
	rt.RunUntil(sim.Time(500 * time.Millisecond))
	n, err := rt.Engine.Recover()
	if err != nil || n != 0 {
		t.Fatalf("Recover on live engine = %d, %v", n, err)
	}
	rt.Run()
	in := finished(t, rt, id)
	if in.Activities != 2 {
		t.Fatalf("activities = %d (duplicated work?)", in.Activities)
	}
	if got := len(rt.Engine.Instances()); got != 1 {
		t.Fatalf("instances = %d", got)
	}
}
