package core

import (
	"testing"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/store"
)

// waitReplicaConverged polls until the standby's logical digest equals the
// primary's and the primary has stopped moving (two consecutive matching
// reads), returning the converged digest.
func waitReplicaConverged(t *testing.T, primary, standby *store.Disk) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	stable := 0
	var last string
	for time.Now().Before(deadline) {
		pd, err := primary.Digest()
		if err != nil {
			t.Fatal(err)
		}
		sd, err := standby.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if pd == sd && pd == last {
			stable++
			if stable >= 2 {
				return pd
			}
		} else {
			stable = 0
		}
		last = pd
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("standby never converged with the primary")
	return ""
}

// TestStandbyPromotionEndToEnd is the full §6 failover story on real
// runtimes and real disks: a primary LocalRuntime ships its WAL to a hot
// standby while a process runs; the primary dies mid-run; the standby is
// promoted with a byte-identical store (Digest match) and a fresh runtime
// recovers the in-flight instance and drives it to the correct result.
func TestStandbyPromotionEndToEnd(t *testing.T) {
	disk, err := store.OpenDisk(t.TempDir(), store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	shipper, err := disk.StartShipping("127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer shipper.Close()

	// A slowed-down double so the suspension below catches the run with
	// work still outstanding.
	lib := NewLibrary()
	if err := lib.RegisterFunc("test.double", func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		time.Sleep(30 * time.Millisecond)
		return map[string]ocr.Value{"out": ocr.Num(2 * args["x"].AsNum())}, nil
	}); err != nil {
		t.Fatal(err)
	}
	taskDone := make(chan struct{}, 64)
	rt, err := NewLocalRuntime(LocalConfig{
		Workers: 2,
		Store:   disk,
		Library: lib,
		OnEvent: func(ev Event) {
			if ev.Kind == EvTaskEnded {
				select {
				case taskDone <- struct{}{}:
				default:
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterTemplateSource(parallelSrc); err != nil {
		t.Fatal(err)
	}
	id, err := rt.StartProcess("Par", map[string]ocr.Value{"xs": sixXs()}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one activity commit, then freeze the instance with work
	// remaining — the state a failover must carry over.
	select {
	case <-taskDone:
	case <-time.After(10 * time.Second):
		t.Fatal("no task finished on the primary")
	}
	if err := rt.Engine().Suspend(id, false); err != nil {
		t.Fatal(err)
	}
	rt.Engine().QuiesceCheckpoints()

	// Hot standby joins mid-history and catches up.
	sdir := t.TempDir()
	sb, err := store.OpenStandby(sdir, store.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	followErr := make(chan error, 1)
	go func() { followErr <- sb.Follow(shipper.Addr(), t.Logf) }()
	want := waitReplicaConverged(t, disk, sb.Store())

	// The primary dies: runtime, shipper, and store all go away.
	rt.Close()
	if err := shipper.Close(); err != nil {
		t.Fatal(err)
	}
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-followErr:
		if err == nil {
			t.Fatal("follower saw a clean close; want the primary-death cue")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower did not notice the primary dying")
	}

	promoted, err := sb.Promote()
	if err != nil {
		t.Fatal(err)
	}
	defer promoted.Close()
	got, err := promoted.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("promoted store digest %s, want %s (not byte-identical)", got, want)
	}

	// New life on the promoted store: recover, resume, finish.
	rt2, err := NewLocalRuntime(LocalConfig{Workers: 2, Store: promoted, Library: testLibrary(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	if n, err := rt2.Engine().Recover(); err != nil || n != 1 {
		t.Fatalf("recover on promoted store = %d, %v", n, err)
	}
	if err := rt2.Engine().Resume(id); err != nil {
		t.Fatal(err)
	}
	in, err := rt2.Wait(id, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	for i := 0; i < 6; i++ {
		if got := in.Outputs["doubled"].At(i).AsNum(); got != float64(2*(i+1)) {
			t.Fatalf("doubled[%d] = %v after failover", i, got)
		}
	}
}
