package core

import (
	"fmt"
	"sort"
	"time"

	"bioopera/internal/ocr"
)

// ProgramCtx gives a program access to its execution context.
type ProgramCtx struct {
	// Instance and Task identify the caller.
	Instance string
	Task     string
	// Attempt is 0 on the first try, incrementing with retries.
	Attempt int
	// Node is where the activity was placed.
	Node string
}

// ProgramFunc computes an activity's outputs from its evaluated inputs.
// It is the external binding target (the paper's "stand alone programs or
// systems that can be relied upon to complete one of the computational
// steps"). Returning an error counts as a program failure (subject to the
// task's RETRY/ON FAILURE handling).
type ProgramFunc func(ctx ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error)

// CostFunc estimates the reference-CPU cost of an invocation, letting the
// simulated cluster charge realistic virtual time. A nil CostFunc falls
// back to the task's COST annotation, then to DefaultActivityCost.
type CostFunc func(args map[string]ocr.Value) time.Duration

// DefaultActivityCost is charged when nothing better is known.
const DefaultActivityCost = time.Second

// Program is one entry of the activity library (§3.2's "library management
// element": program to be invoked, input, output, where it runs, how to
// pass arguments).
type Program struct {
	// Name is the external binding string used by CALL.
	Name string
	// Run computes the outputs. Required.
	Run ProgramFunc
	// Cost estimates virtual CPU cost (may be nil).
	Cost CostFunc
	// OS restricts placement ("" = anywhere).
	OS string
	// Nodes restricts placement to specific nodes (nil = anywhere).
	Nodes []string
}

// Library is the program registry distributed with the engine.
type Library struct {
	programs map[string]*Program
}

// NewLibrary returns an empty library.
func NewLibrary() *Library { return &Library{programs: make(map[string]*Program)} }

// Register adds a program, replacing any previous binding of the name.
func (l *Library) Register(p Program) error {
	if p.Name == "" {
		return fmt.Errorf("core: program with empty name")
	}
	if p.Run == nil {
		return fmt.Errorf("core: program %s has no Run function", p.Name)
	}
	cp := p
	l.programs[p.Name] = &cp
	return nil
}

// RegisterFunc is shorthand for registering a pure function.
func (l *Library) RegisterFunc(name string, run ProgramFunc) error {
	return l.Register(Program{Name: name, Run: run})
}

// Lookup finds a program by binding name.
func (l *Library) Lookup(name string) (*Program, bool) {
	p, ok := l.programs[name]
	return p, ok
}

// Names lists the registered bindings, sorted.
func (l *Library) Names() []string {
	out := make([]string, 0, len(l.programs))
	for n := range l.programs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
