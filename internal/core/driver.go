package core

import (
	"encoding/json"
	"fmt"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// SimRuntime wires the engine, a simulated cluster, and the discrete-event
// kernel into one deterministic system — the configuration every
// experiment runs on.
type SimRuntime struct {
	Sim     *sim.Sim
	Cluster *cluster.Cluster
	Engine  *Engine
	Tracker *Tracker
	Store   store.Store

	monitors map[string]*cluster.AdaptiveMonitor
	reported map[string]float64
}

// SimConfig configures a SimRuntime.
type SimConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Spec is the cluster hardware. Required.
	Spec cluster.Spec
	// Store defaults to an in-memory store.
	Store store.Store
	// Library defaults to an empty library.
	Library *Library
	// Engine options applied on top (Policy, callbacks).
	Options Options
	// TrackEvery enables the availability/utilization tracker at the
	// given period (0 = disabled).
	TrackEvery time.Duration
	// InitialCPUs optionally caps per-node CPUs at start (Fig. 6's
	// pre-upgrade state).
	InitialCPUs int
	// SnapshotEvery periodically snapshots the store (when the store
	// supports it), garbage-collecting the write-ahead log under it —
	// how a month-long run keeps its recovery log bounded. 0 disables.
	SnapshotEvery time.Duration
	// Monitor attaches an adaptive load monitor (a PEC duty, §3.4) to
	// every node; reports land in the runtime's ReportedLoads view and
	// the store's event journal.
	Monitor bool
}

// simExec adapts the simulated cluster to the Executor contract. It models
// only the scheduling decision (job, node, cost, niceness): leaving the
// completion's Outputs nil makes the engine run the external binding at
// completion time, so the discrete-event trace never depends on real
// execution.
type simExec struct{ c *cluster.Cluster }

// Nodes implements Executor.
func (x simExec) Nodes() []cluster.NodeView { return x.c.Nodes() }

// Launch implements Executor.
func (x simExec) Launch(l Launch) error {
	return x.c.Start(l.Job, l.Node, l.Cost, l.Nice)
}

// Kill implements Executor.
func (x simExec) Kill(id cluster.JobID, node string) error { return x.c.Kill(id, node) }

// NewSimRuntime builds the wired system. The cluster's configuration is
// recorded in the store's configuration space.
func NewSimRuntime(cfg SimConfig) (*SimRuntime, error) {
	s := sim.New(cfg.Seed)
	st := cfg.Store
	if st == nil {
		st = store.NewMem()
	}
	lib := cfg.Library
	if lib == nil {
		lib = NewLibrary()
	}
	rt := &SimRuntime{Sim: s, Store: st}
	rt.Cluster = cluster.New(s, cfg.Spec, cluster.Options{InitialCPUs: cfg.InitialCPUs})
	// Store failures outside the engine (journal appends, config records,
	// periodic snapshots) flow to the same OnError the engine uses.
	storeErr := func(context string, err error) {
		if err != nil && cfg.Options.OnError != nil {
			cfg.Options.OnError(fmt.Errorf("core: sim runtime %s: %w", context, err))
		}
	}

	opts := cfg.Options
	opts.Store = st
	opts.Library = lib
	opts.Executor = simExec{rt.Cluster}
	opts.Clock = ClockFunc(s.Now)
	// TIMEOUT timers run on the virtual clock, keeping runs deterministic.
	opts.After = func(d time.Duration, f func()) func() {
		t := s.AfterCancel(d, func(sim.Time) { f() })
		return t.Stop
	}
	eng, err := New(opts)
	if err != nil {
		return nil, err
	}
	rt.Engine = eng

	rt.Cluster.SetHandlers(
		func(c cluster.Completion) { eng.HandleCompletion(c) },
		func(ev cluster.Event) {
			// Infrastructure events feed the awareness model's
			// journal (§3.4: node availability, failures, load are
			// all stored persistently).
			rec, _ := json.Marshal(map[string]any{
				"at": ev.At, "kind": "cluster-" + ev.Type.String(),
				"node": ev.Node, "detail": ev.Detail,
			})
			_, err := st.AppendEvent(rec)
			storeErr("journal cluster event", err)
			// Capacity may have appeared: node back up, CPUs
			// added, or a slot freed by a failure.
			switch ev.Type {
			case cluster.EvNodeUp, cluster.EvCPUChange, cluster.EvLoadChange:
				eng.Pump()
			}
		},
	)

	// Record the configuration space (§3.2).
	for _, n := range cfg.Spec.Nodes {
		rec := []byte(n.Name + " os=" + n.OS)
		storeErr("record node config", st.Put(store.Configuration, "node/"+n.Name, rec))
	}

	if cfg.TrackEvery > 0 {
		rt.Tracker = NewTracker(s, rt.Cluster, cfg.TrackEvery)
	}
	if cfg.SnapshotEvery > 0 {
		if snap, ok := st.(Snapshotter); ok {
			s.Every(cfg.SnapshotEvery, func(sim.Time) { storeErr("periodic snapshot", snap.Snapshot()) })
		}
	}
	if cfg.Monitor {
		rt.monitors = make(map[string]*cluster.AdaptiveMonitor, len(cfg.Spec.Nodes))
		rt.reported = make(map[string]float64, len(cfg.Spec.Nodes))
		for _, n := range cfg.Spec.Nodes {
			name := n.Name
			rt.monitors[name] = cluster.NewAdaptiveMonitor(s, cluster.DefaultMonitorConfig(),
				func() float64 { return rt.Cluster.Load(name) },
				func(at sim.Time, load float64) {
					rt.reported[name] = load
					rec, _ := json.Marshal(map[string]any{
						"at": at, "kind": "load-report", "node": name, "load": load,
					})
					_, err := st.AppendEvent(rec)
					storeErr("journal load report", err)
				})
		}
	}
	return rt, nil
}

// ReportedLoads returns the server's current belief about each node's
// load, as delivered by the adaptive monitors (empty unless
// SimConfig.Monitor was set).
func (rt *SimRuntime) ReportedLoads() map[string]float64 {
	out := make(map[string]float64, len(rt.reported))
	for k, v := range rt.reported {
		out[k] = v
	}
	return out
}

// MonitorStats aggregates the PEC monitors' sampling statistics: total
// local samples and reports actually sent to the server.
func (rt *SimRuntime) MonitorStats() (samples, reports int) {
	for _, m := range rt.monitors {
		samples += m.Samples
		reports += m.Reports
	}
	return samples, reports
}

// Failover models the backup-server architecture the paper names as
// future work (§6: "a backup architecture for the BioOpera server so that
// if a server fails or requires maintenance, the backup can assume control
// and continue execution smoothly"): a standby engine is built over the
// same store and cluster, the cluster's completion stream is re-pointed at
// it, and it recovers every unfinished instance. The old engine is dead
// from this point on (its completions would be stale anyway). Returns the
// standby, which also replaces rt.Engine.
func (rt *SimRuntime) Failover() (*Engine, error) {
	old := rt.Engine
	opts := old.opts
	standby, err := New(opts)
	if err != nil {
		return nil, err
	}
	// Orphan the old engine: no more completions reach it.
	rt.Cluster.SetHandlers(
		func(c cluster.Completion) { standby.HandleCompletion(c) },
		func(ev cluster.Event) {
			switch ev.Type {
			case cluster.EvNodeUp, cluster.EvCPUChange, cluster.EvLoadChange:
				standby.Pump()
			}
		},
	)
	if _, err := standby.Recover(); err != nil {
		return nil, err
	}
	rt.Engine = standby
	return standby, nil
}

// Run drives the simulation until the agenda drains and returns the final
// virtual time.
func (rt *SimRuntime) Run() sim.Time { return rt.Sim.Run() }

// RunUntil drives the simulation to the given virtual time.
func (rt *SimRuntime) RunUntil(t sim.Time) sim.Time { return rt.Sim.RunUntil(t) }
