package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/store"
)

func newLocal(t *testing.T, workers int) *LocalRuntime {
	t.Helper()
	rt, err := NewLocalRuntime(LocalConfig{Workers: workers, Library: testLibrary(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestLocalLinear(t *testing.T) {
	rt := newLocal(t, 2)
	if err := rt.RegisterTemplateSource(linearSrc); err != nil {
		t.Fatal(err)
	}
	id, err := rt.StartProcess("Linear", map[string]ocr.Value{"a": ocr.Num(3), "b": ocr.Num(4)}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != InstanceDone || in.Outputs["result"].AsNum() != 14 {
		t.Fatalf("instance %s, result %v", in.Status, in.Outputs["result"])
	}
	status, outputs, err := rt.InstanceStatus(id)
	if err != nil || status != InstanceDone || outputs["result"].AsNum() != 14 {
		t.Fatalf("InstanceStatus = %v %v %v", status, outputs, err)
	}
}

func TestLocalParallelReallyParallel(t *testing.T) {
	lib := NewLibrary()
	lib.Register(Program{
		Name: "test.sleep",
		Run: func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			time.Sleep(100 * time.Millisecond)
			return map[string]ocr.Value{"out": args["x"]}, nil
		},
	})
	rt, err := NewLocalRuntime(LocalConfig{Workers: 4, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.RegisterTemplateSource(`
PROCESS Sleepy {
  INPUT xs;
  OUTPUT done;
  BLOCK Fan PARALLEL OVER xs AS x {
    MAP results -> done;
    OUTPUT r;
    ACTIVITY S { CALL test.sleep(x = x); OUT out; MAP out -> r; }
  }
}`); err != nil {
		t.Fatal(err)
	}
	var xs []ocr.Value
	for i := 0; i < 8; i++ {
		xs = append(xs, ocr.Int(i))
	}
	start := time.Now()
	id, err := rt.StartProcess("Sleepy", map[string]ocr.Value{"xs": ocr.List(xs...)}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	// 8 × 100ms on 4 workers ≈ 200ms; serial would be 800ms.
	if elapsed > 700*time.Millisecond {
		t.Fatalf("took %v — not parallel", elapsed)
	}
	if in.Outputs["done"].Len() != 8 {
		t.Fatalf("results = %v", in.Outputs["done"])
	}
	for i := 0; i < 8; i++ {
		if in.Outputs["done"].At(i).AsInt() != i {
			t.Fatalf("result order broken: %v", in.Outputs["done"])
		}
	}
}

func TestLocalRetries(t *testing.T) {
	rt := newLocal(t, 2)
	if err := rt.RegisterTemplateSource(`
PROCESS Flaky {
  OUTPUT r;
  ACTIVITY F {
    CALL test.flaky(until = 2);
    OUT out;
    MAP out -> r;
    RETRY 3;
  }
}`); err != nil {
		t.Fatal(err)
	}
	id, _ := rt.StartProcess("Flaky", nil, StartOptions{})
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != InstanceDone || in.Outputs["r"].AsStr() != "recovered" {
		t.Fatalf("instance %s outputs %v", in.Status, in.Outputs)
	}
}

func TestLocalProgramFailureAborts(t *testing.T) {
	rt := newLocal(t, 1)
	if err := rt.RegisterTemplateSource(`
PROCESS Doomed {
  ACTIVITY F { CALL test.fail(); }
}`); err != nil {
		t.Fatal(err)
	}
	id, _ := rt.StartProcess("Doomed", nil, StartOptions{})
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != InstanceFailed {
		t.Fatalf("instance %s", in.Status)
	}
}

func TestLocalWaitTimeout(t *testing.T) {
	lib := NewLibrary()
	lib.Register(Program{
		Name: "test.slow",
		Run: func(ProgramCtx, map[string]ocr.Value) (map[string]ocr.Value, error) {
			time.Sleep(2 * time.Second)
			return nil, nil
		},
	})
	rt, err := NewLocalRuntime(LocalConfig{Workers: 1, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.RegisterTemplateSource(`PROCESS Slow { ACTIVITY S { CALL test.slow(); } }`)
	id, _ := rt.StartProcess("Slow", nil, StartOptions{})
	if _, err := rt.Wait(id, 100*time.Millisecond); err == nil {
		t.Fatal("Wait did not time out")
	}
	if _, err := rt.Wait("ghost", time.Millisecond); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("Wait(ghost) = %v", err)
	}
}

func TestLocalTimeoutFailover(t *testing.T) {
	// The first attempt hangs far past its TIMEOUT; the dispatcher kills
	// it and the activity fails over to a fresh attempt — without a RETRY
	// annotation, proving the requeue consumed no retry budget.
	var calls atomic.Int32
	release := make(chan struct{})
	defer close(release)
	lib := NewLibrary()
	lib.Register(Program{
		Name: "test.hang",
		Run: func(ProgramCtx, map[string]ocr.Value) (map[string]ocr.Value, error) {
			if calls.Add(1) == 1 {
				<-release
			}
			return map[string]ocr.Value{"out": ocr.Str("ok")}, nil
		},
	})
	var mu sync.Mutex
	var timeouts []Event
	rt, err := NewLocalRuntime(LocalConfig{
		Workers: 2,
		Library: lib,
		OnEvent: func(ev Event) {
			if ev.Kind == EvTaskTimeout {
				mu.Lock()
				timeouts = append(timeouts, ev)
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.RegisterTemplateSource(`
PROCESS Hang {
  OUTPUT r;
  ACTIVITY H { CALL test.hang(); OUT out; MAP out -> r; TIMEOUT 0.2; }
}`); err != nil {
		t.Fatal(err)
	}
	id, _ := rt.StartProcess("Hang", nil, StartOptions{})
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != InstanceDone || in.Outputs["r"].AsStr() != "ok" {
		t.Fatalf("instance %s (%s) outputs %v", in.Status, in.FailureReason, in.Outputs)
	}
	if in.Retries == 0 {
		t.Fatal("timeout failover did not requeue through the infra path")
	}
	mu.Lock()
	n := len(timeouts)
	mu.Unlock()
	if n == 0 {
		t.Fatal("no task-timeout event emitted")
	}
}

func TestLocalSnapshotEvery(t *testing.T) {
	lib := testLibrary(t)
	st := &countingSnapStore{Store: store.NewMem()}
	rt, err := NewLocalRuntime(LocalConfig{
		Workers:       1,
		Library:       lib,
		Store:         st,
		SnapshotEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	deadline := time.Now().Add(5 * time.Second)
	for st.snaps.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d snapshots after 5s", st.snaps.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	rt.Close() // idempotent; stops the loop
	n := st.snaps.Load()
	time.Sleep(50 * time.Millisecond)
	if got := st.snaps.Load(); got > n+1 {
		t.Fatalf("snapshot loop kept running after Close: %d -> %d", n, got)
	}
}

// countingSnapStore gives any store a Snapshot method and counts calls.
type countingSnapStore struct {
	store.Store
	snaps atomic.Int32
}

func (s *countingSnapStore) Snapshot() error {
	s.snaps.Add(1)
	return nil
}
