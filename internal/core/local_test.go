package core

import (
	"errors"
	"testing"
	"time"

	"bioopera/internal/ocr"
)

func newLocal(t *testing.T, workers int) *LocalRuntime {
	t.Helper()
	rt, err := NewLocalRuntime(LocalConfig{Workers: workers, Library: testLibrary(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func TestLocalLinear(t *testing.T) {
	rt := newLocal(t, 2)
	if err := rt.RegisterTemplateSource(linearSrc); err != nil {
		t.Fatal(err)
	}
	id, err := rt.StartProcess("Linear", map[string]ocr.Value{"a": ocr.Num(3), "b": ocr.Num(4)}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != InstanceDone || in.Outputs["result"].AsNum() != 14 {
		t.Fatalf("instance %s, result %v", in.Status, in.Outputs["result"])
	}
	status, outputs, err := rt.InstanceStatus(id)
	if err != nil || status != InstanceDone || outputs["result"].AsNum() != 14 {
		t.Fatalf("InstanceStatus = %v %v %v", status, outputs, err)
	}
}

func TestLocalParallelReallyParallel(t *testing.T) {
	lib := NewLibrary()
	lib.Register(Program{
		Name: "test.sleep",
		Run: func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
			time.Sleep(100 * time.Millisecond)
			return map[string]ocr.Value{"out": args["x"]}, nil
		},
	})
	rt, err := NewLocalRuntime(LocalConfig{Workers: 4, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if err := rt.RegisterTemplateSource(`
PROCESS Sleepy {
  INPUT xs;
  OUTPUT done;
  BLOCK Fan PARALLEL OVER xs AS x {
    MAP results -> done;
    OUTPUT r;
    ACTIVITY S { CALL test.sleep(x = x); OUT out; MAP out -> r; }
  }
}`); err != nil {
		t.Fatal(err)
	}
	var xs []ocr.Value
	for i := 0; i < 8; i++ {
		xs = append(xs, ocr.Int(i))
	}
	start := time.Now()
	id, err := rt.StartProcess("Sleepy", map[string]ocr.Value{"xs": ocr.List(xs...)}, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if in.Status != InstanceDone {
		t.Fatalf("instance %s (%s)", in.Status, in.FailureReason)
	}
	// 8 × 100ms on 4 workers ≈ 200ms; serial would be 800ms.
	if elapsed > 700*time.Millisecond {
		t.Fatalf("took %v — not parallel", elapsed)
	}
	if in.Outputs["done"].Len() != 8 {
		t.Fatalf("results = %v", in.Outputs["done"])
	}
	for i := 0; i < 8; i++ {
		if in.Outputs["done"].At(i).AsInt() != i {
			t.Fatalf("result order broken: %v", in.Outputs["done"])
		}
	}
}

func TestLocalRetries(t *testing.T) {
	rt := newLocal(t, 2)
	if err := rt.RegisterTemplateSource(`
PROCESS Flaky {
  OUTPUT r;
  ACTIVITY F {
    CALL test.flaky(until = 2);
    OUT out;
    MAP out -> r;
    RETRY 3;
  }
}`); err != nil {
		t.Fatal(err)
	}
	id, _ := rt.StartProcess("Flaky", nil, StartOptions{})
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != InstanceDone || in.Outputs["r"].AsStr() != "recovered" {
		t.Fatalf("instance %s outputs %v", in.Status, in.Outputs)
	}
}

func TestLocalProgramFailureAborts(t *testing.T) {
	rt := newLocal(t, 1)
	if err := rt.RegisterTemplateSource(`
PROCESS Doomed {
  ACTIVITY F { CALL test.fail(); }
}`); err != nil {
		t.Fatal(err)
	}
	id, _ := rt.StartProcess("Doomed", nil, StartOptions{})
	in, err := rt.Wait(id, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if in.Status != InstanceFailed {
		t.Fatalf("instance %s", in.Status)
	}
}

func TestLocalWaitTimeout(t *testing.T) {
	lib := NewLibrary()
	lib.Register(Program{
		Name: "test.slow",
		Run: func(ProgramCtx, map[string]ocr.Value) (map[string]ocr.Value, error) {
			time.Sleep(2 * time.Second)
			return nil, nil
		},
	})
	rt, err := NewLocalRuntime(LocalConfig{Workers: 1, Library: lib})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	rt.RegisterTemplateSource(`PROCESS Slow { ACTIVITY S { CALL test.slow(); } }`)
	id, _ := rt.StartProcess("Slow", nil, StartOptions{})
	if _, err := rt.Wait(id, 100*time.Millisecond); err == nil {
		t.Fatal("Wait did not time out")
	}
	if _, err := rt.Wait("ghost", time.Millisecond); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("Wait(ghost) = %v", err)
	}
}
