package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"bioopera/internal/cluster"
	"bioopera/internal/ocr"
	"bioopera/internal/sched"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// testSpec is a small 2-node cluster.
func testSpec() cluster.Spec {
	return cluster.Spec{Name: "test", Nodes: []cluster.NodeSpec{
		{Name: "n1", CPUs: 2, Speed: 1, OS: "linux"},
		{Name: "n2", CPUs: 2, Speed: 1, OS: "solaris"},
	}}
}

// testLibrary registers arithmetic/test programs.
func testLibrary(t *testing.T) *Library {
	t.Helper()
	lib := NewLibrary()
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(lib.RegisterFunc("test.add", func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		return map[string]ocr.Value{"sum": ocr.Num(args["a"].AsNum() + args["b"].AsNum())}, nil
	}))
	must(lib.RegisterFunc("test.double", func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		return map[string]ocr.Value{"out": ocr.Num(2 * args["x"].AsNum())}, nil
	}))
	must(lib.RegisterFunc("test.echo", func(_ ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		return map[string]ocr.Value{"out": args["x"]}, nil
	}))
	must(lib.RegisterFunc("test.constant", func(_ ProgramCtx, _ map[string]ocr.Value) (map[string]ocr.Value, error) {
		return map[string]ocr.Value{"out": ocr.Str("const")}, nil
	}))
	must(lib.RegisterFunc("test.fail", func(_ ProgramCtx, _ map[string]ocr.Value) (map[string]ocr.Value, error) {
		return nil, errors.New("deliberate failure")
	}))
	// Fails until attempt reaches the requested threshold.
	must(lib.RegisterFunc("test.flaky", func(ctx ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		if ctx.Attempt < args["until"].AsInt() {
			return nil, fmt.Errorf("flaky attempt %d", ctx.Attempt)
		}
		return map[string]ocr.Value{"out": ocr.Str("recovered")}, nil
	}))
	return lib
}

// newRuntime builds a sim runtime with the test library.
func newRuntime(t *testing.T, cfg SimConfig) *SimRuntime {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Spec.Nodes == nil {
		cfg.Spec = testSpec()
	}
	if cfg.Library == nil {
		cfg.Library = testLibrary(t)
	}
	rt, err := NewSimRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func register(t *testing.T, rt *SimRuntime, src string) {
	t.Helper()
	if err := rt.Engine.RegisterTemplateSource(src); err != nil {
		t.Fatal(err)
	}
}

func start(t *testing.T, rt *SimRuntime, tpl string, inputs map[string]ocr.Value) string {
	t.Helper()
	id, err := rt.Engine.StartProcess(tpl, inputs, StartOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func finished(t *testing.T, rt *SimRuntime, id string) *Instance {
	t.Helper()
	in, ok := rt.Engine.Instance(id)
	if !ok {
		t.Fatalf("instance %s vanished", id)
	}
	if in.Status != InstanceDone {
		t.Fatalf("instance %s = %s (%s)", id, in.Status, in.FailureReason)
	}
	return in
}

const linearSrc = `
PROCESS Linear {
  INPUT a, b;
  OUTPUT result;
  ACTIVITY Add {
    CALL test.add(a = a, b = b);
    OUT sum;
    MAP sum -> partial;
  }
  ACTIVITY Double {
    CALL test.double(x = partial);
    OUT out;
    MAP out -> result;
  }
  Add -> Double;
}
`

func TestLinearProcess(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(3), "b": ocr.Num(4)})
	rt.Run()
	in := finished(t, rt, id)
	if got := in.Outputs["result"].AsNum(); got != 14 {
		t.Fatalf("result = %v, want 14", got)
	}
	if in.Activities != 2 {
		t.Fatalf("activities = %d, want 2", in.Activities)
	}
	if in.CPU <= 0 || in.WALL(rt.Sim.Now()) <= 0 {
		t.Fatalf("accounting: cpu=%v wall=%v", in.CPU, in.WALL(rt.Sim.Now()))
	}
	if in.CPUPerActivity() != in.CPU/2 {
		t.Fatalf("cpu/activity = %v", in.CPUPerActivity())
	}
}

const branchSrc = `
PROCESS Branch {
  INPUT queue_file;
  OUTPUT result;
  ACTIVITY UserIn {
    CALL test.echo(x = queue_file);
    OUT out;
    MAP out -> qf;
  }
  ACTIVITY Generate {
    CALL test.constant();
    OUT out;
    MAP out -> qf;
  }
  ACTIVITY Use {
    CALL test.echo(x = qf);
    OUT out;
    MAP out -> result;
  }
  UserIn -> Generate IF !defined(queue_file);
  UserIn -> Use IF defined(queue_file);
  Generate -> Use;
}
`

func TestConditionalBranchTaken(t *testing.T) {
	// queue_file provided: Generate is dead, Use reads it directly.
	rt := newRuntime(t, SimConfig{})
	register(t, rt, branchSrc)
	id := start(t, rt, "Branch", map[string]ocr.Value{"queue_file": ocr.Str("user-queue")})
	rt.Run()
	in := finished(t, rt, id)
	if got := in.Outputs["result"].AsStr(); got != "user-queue" {
		t.Fatalf("result = %q", got)
	}
	if in.Activities != 2 {
		t.Fatalf("activities = %d, want 2 (Generate skipped)", in.Activities)
	}
}

func TestConditionalBranchDeadPath(t *testing.T) {
	// No queue_file: Generate runs and produces it.
	rt := newRuntime(t, SimConfig{})
	register(t, rt, branchSrc)
	id := start(t, rt, "Branch", nil)
	rt.Run()
	in := finished(t, rt, id)
	if got := in.Outputs["result"].AsStr(); got != "const" {
		t.Fatalf("result = %q", got)
	}
	if in.Activities != 3 {
		t.Fatalf("activities = %d, want 3", in.Activities)
	}
}

const parallelSrc = `
PROCESS Par {
  INPUT xs;
  OUTPUT doubled;
  BLOCK Fan PARALLEL OVER xs AS x {
    MAP results -> doubled;
    OUTPUT y;
    ACTIVITY D {
      CALL test.double(x = x);
      OUT out;
      MAP out -> y;
    }
  }
}
`

func TestParallelBlock(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	xs := ocr.List(ocr.Num(1), ocr.Num(2), ocr.Num(3), ocr.Num(4), ocr.Num(5))
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": xs})
	rt.Run()
	in := finished(t, rt, id)
	got := in.Outputs["doubled"]
	if got.Len() != 5 {
		t.Fatalf("results len = %d", got.Len())
	}
	// Order must match the input list, not completion order.
	for i := 0; i < 5; i++ {
		if got.At(i).AsNum() != float64(2*(i+1)) {
			t.Fatalf("results = %v", got)
		}
	}
	if in.Activities != 5 {
		t.Fatalf("activities = %d", in.Activities)
	}
}

func TestParallelBlockEmptyList(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List()})
	rt.Run()
	in := finished(t, rt, id)
	if in.Outputs["doubled"].Len() != 0 || in.Outputs["doubled"].Kind() != ocr.KindList {
		t.Fatalf("empty fan-out = %v", in.Outputs["doubled"])
	}
	if in.Activities != 0 {
		t.Fatalf("activities = %d", in.Activities)
	}
}

func TestParallelismActuallyParallel(t *testing.T) {
	// 4 CPUs, 8 one-second activities → wall ≈ 2s not 8s.
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 8; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})
	end := rt.Run()
	finished(t, rt, id)
	if end > sim.Time(3*time.Second) {
		t.Fatalf("8 unit tasks on 4 cpus took %v", end)
	}
	if end < sim.Time(2*time.Second) {
		t.Fatalf("impossible speedup: %v", end)
	}
}

const subprocSrc = `
PROCESS Inner {
  INPUT v;
  OUTPUT w;
  ACTIVITY T {
    CALL test.double(x = v);
    OUT out;
    MAP out -> w;
  }
}
PROCESS Outer {
  INPUT v;
  OUTPUT final;
  SUBPROCESS Sub USES "Inner" {
    IN v = v + 1;
    OUT w;
    MAP w -> final;
  }
}
`

func TestSubprocessLateBinding(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, subprocSrc)
	id := start(t, rt, "Outer", map[string]ocr.Value{"v": ocr.Num(5)})
	rt.Run()
	in := finished(t, rt, id)
	if got := in.Outputs["final"].AsNum(); got != 12 {
		t.Fatalf("final = %v, want 12", got)
	}
}

func TestLateBindingPicksUpNewTemplate(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, subprocSrc)
	// Replace Inner BEFORE starting Outer: the subprocess must run the
	// new version (late binding, §3.1).
	register(t, rt, `
PROCESS Inner {
  INPUT v;
  OUTPUT w;
  ACTIVITY T {
    CALL test.echo(x = "replaced");
    OUT out;
    MAP out -> w;
  }
}`)
	id := start(t, rt, "Outer", map[string]ocr.Value{"v": ocr.Num(5)})
	rt.Run()
	in := finished(t, rt, id)
	if got := in.Outputs["final"].AsStr(); got != "replaced" {
		t.Fatalf("final = %q, want replaced", got)
	}
}

func TestRetrySucceeds(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, `
PROCESS Flaky {
  OUTPUT r;
  ACTIVITY F {
    CALL test.flaky(until = 2);
    OUT out;
    MAP out -> r;
    RETRY 3;
  }
}`)
	id := start(t, rt, "Flaky", nil)
	rt.Run()
	in := finished(t, rt, id)
	if got := in.Outputs["r"].AsStr(); got != "recovered" {
		t.Fatalf("r = %q", got)
	}
	if in.Failures != 2 || in.Retries != 2 {
		t.Fatalf("failures/retries = %d/%d, want 2/2", in.Failures, in.Retries)
	}
}

func TestRetryExhaustedAborts(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, `
PROCESS Doomed {
  ACTIVITY F {
    CALL test.fail();
    RETRY 2;
  }
}`)
	id := start(t, rt, "Doomed", nil)
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != InstanceFailed {
		t.Fatalf("status = %s", in.Status)
	}
	if !strings.Contains(in.FailureReason, "deliberate failure") {
		t.Fatalf("reason = %q", in.FailureReason)
	}
}

func TestOnFailureIgnore(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, `
PROCESS Tolerant {
  OUTPUT r;
  ACTIVITY F {
    CALL test.fail();
    OUT out;
    MAP out -> maybe;
    ON FAILURE IGNORE;
  }
  ACTIVITY After {
    CALL test.echo(x = defined(maybe));
    OUT out;
    MAP out -> r;
  }
  F -> After;
}`)
	id := start(t, rt, "Tolerant", nil)
	rt.Run()
	in := finished(t, rt, id)
	// maybe is mapped as null → defined() false.
	if in.Outputs["r"].AsBool() {
		t.Fatalf("r = %v, want false (null output)", in.Outputs["r"])
	}
}

func TestOnFailureAlternative(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, `
PROCESS WithAlt {
  OUTPUT r;
  ACTIVITY Main {
    CALL test.fail();
    OUT out;
    MAP out -> r;
    ON FAILURE ALTERNATIVE Backup;
  }
  ACTIVITY Backup {
    CALL test.constant();
    OUT out;
  }
  ACTIVITY After {
    CALL test.echo(x = r);
    OUT out;
    MAP out -> r;
  }
  Main -> After;
}`)
	id := start(t, rt, "WithAlt", nil)
	rt.Run()
	in := finished(t, rt, id)
	if got := in.Outputs["r"].AsStr(); got != "const" {
		t.Fatalf("r = %q, want const (from Backup via Main's MAP)", got)
	}
	// Backup must not have run as a root at process start; Main's
	// failure does not count as an executed activity.
	if in.Activities != 2 {
		t.Fatalf("activities = %d, want 2 (Backup, After)", in.Activities)
	}
}

func TestAlternativeNotAutoStarted(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, `
PROCESS AltIdle {
  OUTPUT r;
  ACTIVITY Main {
    CALL test.constant();
    OUT out;
    MAP out -> r;
    ON FAILURE ALTERNATIVE Backup;
  }
  ACTIVITY Backup {
    CALL test.fail();
  }
}`)
	id := start(t, rt, "AltIdle", nil)
	rt.Run()
	in := finished(t, rt, id)
	if in.Activities != 1 {
		t.Fatalf("activities = %d, want 1 (Backup must stay idle)", in.Activities)
	}
	if in.Outputs["r"].AsStr() != "const" {
		t.Fatalf("r = %v", in.Outputs["r"])
	}
}

func TestNodeCrashReschedules(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 12; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})
	// Crash n1 mid-run, restore later.
	rt.Sim.At(sim.Time(500*time.Millisecond), func(sim.Time) { rt.Cluster.CrashNode("n1") })
	rt.Sim.At(sim.Time(5*time.Second), func(sim.Time) { rt.Cluster.RestoreNode("n1") })
	rt.Run()
	in := finished(t, rt, id)
	if in.Failures == 0 {
		t.Fatal("crash produced no observed failures")
	}
	got := in.Outputs["doubled"]
	for i := 0; i < 12; i++ {
		if got.At(i).AsNum() != float64(2*i) {
			t.Fatalf("results corrupted after crash: %v", got)
		}
	}
}

func TestWholeClusterFailure(t *testing.T) {
	// §3.5: "BioOpera successfully coped with failures in the entire
	// cluster".
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 8; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})
	rt.Sim.At(sim.Time(500*time.Millisecond), func(sim.Time) {
		rt.Cluster.CrashNode("n1")
		rt.Cluster.CrashNode("n2")
	})
	rt.Sim.At(sim.Time(time.Hour), func(sim.Time) {
		rt.Cluster.RestoreNode("n1")
		rt.Cluster.RestoreNode("n2")
	})
	rt.Run()
	finished(t, rt, id)
}

func TestSuspendGracefulResume(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 10; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})

	var runningAtCheck int
	rt.Sim.At(sim.Time(100*time.Millisecond), func(sim.Time) {
		if err := rt.Engine.Suspend(id, true); err != nil {
			t.Errorf("Suspend: %v", err)
		}
	})
	// Well after the in-flight jobs (1s each) finished: nothing new
	// must have started.
	rt.Sim.At(sim.Time(10*time.Second), func(sim.Time) {
		runningAtCheck = rt.Engine.RunningJobs()
	})
	rt.Sim.At(sim.Time(20*time.Second), func(sim.Time) {
		if err := rt.Engine.Resume(id); err != nil {
			t.Errorf("Resume: %v", err)
		}
	})
	rt.Run()
	if runningAtCheck != 0 {
		t.Fatalf("jobs running while suspended: %d", runningAtCheck)
	}
	in := finished(t, rt, id)
	if in.WALL(rt.Sim.Now()) < 20*time.Second {
		t.Fatalf("wall = %v, should include the suspension", in.WALL(rt.Sim.Now()))
	}
}

func TestSuspendForcedKillsJobs(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	xs := ocr.List(ocr.Num(1), ocr.Num(2))
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": xs})
	rt.Sim.At(sim.Time(100*time.Millisecond), func(sim.Time) {
		rt.Engine.Suspend(id, false)
		if rt.Engine.RunningJobs() != 0 {
			t.Error("forced suspend left jobs running")
		}
	})
	rt.Sim.At(sim.Time(time.Second), func(sim.Time) { rt.Engine.Resume(id) })
	rt.Run()
	finished(t, rt, id)
}

func TestAbort(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	xs := ocr.List(ocr.Num(1), ocr.Num(2), ocr.Num(3))
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": xs})
	rt.Sim.At(sim.Time(100*time.Millisecond), func(sim.Time) {
		if err := rt.Engine.Abort(id, "user request"); err != nil {
			t.Errorf("Abort: %v", err)
		}
	})
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != InstanceFailed || !strings.Contains(in.FailureReason, "user request") {
		t.Fatalf("instance = %s (%s)", in.Status, in.FailureReason)
	}
	if rt.Engine.RunningJobs() != 0 || rt.Engine.QueueLen() != 0 {
		t.Fatal("abort left work in flight")
	}
}

func TestServerCrashRecover(t *testing.T) {
	// The paper's event 3: server crash → on recovery, processes
	// automatically resume; in-flight TEUs are re-run.
	st := store.NewMem()
	rt := newRuntime(t, SimConfig{Store: st})
	register(t, rt, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 10; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})

	rt.Sim.At(sim.Time(1500*time.Millisecond), func(sim.Time) {
		rt.Engine.Crash()
		n, err := rt.Engine.Recover()
		if err != nil {
			t.Errorf("Recover: %v", err)
		}
		if n != 1 {
			t.Errorf("recovered %d instances, want 1", n)
		}
	})
	rt.Run()
	in := finished(t, rt, id)
	got := in.Outputs["doubled"]
	if got.Len() != 10 {
		t.Fatalf("results len = %d", got.Len())
	}
	for i := 0; i < 10; i++ {
		if got.At(i).AsNum() != float64(2*i) {
			t.Fatalf("results after crash = %v", got)
		}
	}
}

func TestColdRestartFromDisk(t *testing.T) {
	// Full restart: new engine object over the same disk store resumes
	// the computation. This is the strongest recovery claim.
	dir := t.TempDir()
	st, err := store.OpenDisk(dir, store.DiskOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	rt := newRuntime(t, SimConfig{Store: st})
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(2)})
	// Run only 0.5s: Add (1s) has not finished; nothing completed yet.
	rt.RunUntil(sim.Time(500 * time.Millisecond))
	st.Close()

	st2, err := store.OpenDisk(dir, store.DiskOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	rt2 := newRuntime(t, SimConfig{Store: st2})
	n, err := rt2.Engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d", n)
	}
	rt2.Run()
	in := finished(t, rt2, id)
	if got := in.Outputs["result"].AsNum(); got != 6 {
		t.Fatalf("result = %v, want 6", got)
	}
	st2.Close()
}

func TestColdRestartMidParallel(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenDisk(dir, store.DiskOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	rt := newRuntime(t, SimConfig{Store: st})
	register(t, rt, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 9; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})
	// Stop mid-flight: some elements done, some running, some queued.
	rt.RunUntil(sim.Time(1200 * time.Millisecond))
	doneBefore := 0
	if in, ok := rt.Engine.Instance(id); ok {
		doneBefore = in.Activities
	}
	if doneBefore == 0 || doneBefore == 9 {
		t.Fatalf("bad cut point: %d activities done", doneBefore)
	}
	st.Close()

	st2, err := store.OpenDisk(dir, store.DiskOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rt2 := newRuntime(t, SimConfig{Store: st2})
	if _, err := rt2.Engine.Recover(); err != nil {
		t.Fatal(err)
	}
	rt2.Run()
	in := finished(t, rt2, id)
	got := in.Outputs["doubled"]
	for i := 0; i < 9; i++ {
		if got.At(i).AsNum() != float64(2*i) {
			t.Fatalf("results after cold restart = %v", got)
		}
	}
	// Completed elements were NOT re-run (no lost work).
	if in.Activities > 9+4 /* at most the in-flight ones repeat */ {
		t.Fatalf("too many re-runs: %d activities", in.Activities)
	}
}

func TestWhatIf(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 10; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})
	var impact OutageImpact
	rt.Sim.At(sim.Time(100*time.Millisecond), func(sim.Time) {
		impact = rt.Engine.WhatIf([]string{"n1"})
	})
	rt.Run()
	finished(t, rt, id)
	if len(impact.Jobs) != 2 {
		t.Fatalf("impact jobs = %d, want 2 (n1's two slots)", len(impact.Jobs))
	}
	if len(impact.Instances) != 1 || impact.Instances[0] != id {
		t.Fatalf("impact instances = %v", impact.Instances)
	}
	if impact.RemainingCPUs != 2 {
		t.Fatalf("remaining cpus = %d", impact.RemainingCPUs)
	}
	if len(impact.Stranded) != 0 {
		t.Fatalf("stranded = %v, nothing is node-pinned", impact.Stranded)
	}
	prog, ok := impact.Progress[id]
	if !ok || prog < 0 || prog >= 1 {
		t.Fatalf("impact progress = %v (%v)", prog, ok)
	}
	if _, ok := impact.Priority[id]; !ok {
		t.Fatal("impact priority missing")
	}
}

func TestWhatIfStranded(t *testing.T) {
	lib := testLibrary(t)
	lib.Register(Program{
		Name: "test.pinned",
		Run: func(_ ProgramCtx, _ map[string]ocr.Value) (map[string]ocr.Value, error) {
			return map[string]ocr.Value{"out": ocr.Null}, nil
		},
		OS: "solaris",
	})
	rt := newRuntime(t, SimConfig{Library: lib})
	register(t, rt, `
PROCESS Pinned {
  ACTIVITY P {
    CALL test.pinned();
    OUT out;
  }
}`)
	start(t, rt, "Pinned", nil)
	var impact OutageImpact
	rt.Sim.At(sim.Time(100*time.Millisecond), func(sim.Time) {
		impact = rt.Engine.WhatIf([]string{"n2"}) // the only solaris node
	})
	rt.Run()
	if len(impact.Stranded) != 1 {
		t.Fatalf("stranded = %v, want the solaris-only activity", impact.Stranded)
	}
}

func TestPriorityOrdersQueue(t *testing.T) {
	// One CPU total: priority decides execution order.
	spec := cluster.Spec{Name: "tiny", Nodes: []cluster.NodeSpec{
		{Name: "solo", CPUs: 1, Speed: 1, OS: "linux"},
	}}
	lib := NewLibrary()
	var order []string
	lib.RegisterFunc("test.mark", func(ctx ProgramCtx, args map[string]ocr.Value) (map[string]ocr.Value, error) {
		order = append(order, args["tag"].AsStr())
		return map[string]ocr.Value{"out": ocr.Null}, nil
	})
	rt := newRuntime(t, SimConfig{Spec: spec, Library: lib})
	register(t, rt, `
PROCESS Mark {
  INPUT tag;
  ACTIVITY M {
    CALL test.mark(tag = tag);
    OUT out;
  }
}`)
	// Start low-priority first; high-priority should overtake in queue.
	rt.Engine.StartProcess("Mark", map[string]ocr.Value{"tag": ocr.Str("low1")}, StartOptions{Priority: 0})
	rt.Engine.StartProcess("Mark", map[string]ocr.Value{"tag": ocr.Str("low2")}, StartOptions{Priority: 0})
	rt.Engine.StartProcess("Mark", map[string]ocr.Value{"tag": ocr.Str("high")}, StartOptions{Priority: 9})
	rt.Run()
	// low1 was dispatched immediately (CPU free); then high jumps low2.
	want := []string{"low1", "high", "low2"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (time.Duration, int, ocr.Value) {
		rt := newRuntime(t, SimConfig{Seed: 42})
		register(t, rt, parallelSrc)
		var xs []ocr.Value
		for i := 0; i < 20; i++ {
			xs = append(xs, ocr.Num(float64(i)))
		}
		id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})
		rt.Sim.At(sim.Time(800*time.Millisecond), func(sim.Time) { rt.Cluster.CrashNode("n1") })
		rt.Sim.At(sim.Time(3*time.Second), func(sim.Time) { rt.Cluster.RestoreNode("n1") })
		end := rt.Run()
		in := finished(t, rt, id)
		return time.Duration(end), in.Activities, in.Outputs["doubled"]
	}
	e1, a1, r1 := run()
	e2, a2, r2 := run()
	if e1 != e2 || a1 != a2 || !r1.Equal(r2) {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", e1, a1, e2, a2)
	}
}

func TestEngineEventsPersisted(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(1)})
	rt.Run()
	finished(t, rt, id)
	var kinds []string
	rt.Store.Events(1, func(e store.Event) error {
		kinds = append(kinds, string(e.Data))
		return nil
	})
	joined := strings.Join(kinds, "\n")
	for _, want := range []string{"instance-started", "task-dispatched", "task-ended", "instance-done"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("event journal missing %q:\n%s", want, joined)
		}
	}
}

func TestHistoryArchival(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(1)})
	rt.Run()
	finished(t, rt, id)
	// Instance space is clean; history holds the records.
	ikvs, _ := rt.Store.List(store.Instance)
	if len(ikvs) != 0 {
		t.Fatalf("instance space still has %d records", len(ikvs))
	}
	hkvs, _ := rt.Store.List(store.History)
	if len(hkvs) < 2 { // meta + root scope
		t.Fatalf("history has %d records", len(hkvs))
	}
}

func TestSetParameter(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, `
PROCESS Tune {
  INPUT threshold;
  OUTPUT r;
  ACTIVITY Wait {
    CALL test.constant();
    OUT out;
  }
  ACTIVITY Use {
    CALL test.echo(x = threshold);
    OUT out;
    MAP out -> r;
  }
  Wait -> Use;
}`)
	id := start(t, rt, "Tune", map[string]ocr.Value{"threshold": ocr.Num(1)})
	rt.Sim.At(sim.Time(500*time.Millisecond), func(sim.Time) {
		// Change the parameter while Wait is still running; Use's
		// binding must see the new value.
		if err := rt.Engine.SetParameter(id, "threshold", ocr.Num(99)); err != nil {
			t.Errorf("SetParameter: %v", err)
		}
	})
	rt.Run()
	in := finished(t, rt, id)
	if got := in.Outputs["r"].AsNum(); got != 99 {
		t.Fatalf("r = %v, want 99", got)
	}
}

func TestMigrateKillAndRestart(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, parallelSrc)
	xs := ocr.List(ocr.Num(1), ocr.Num(2))
	id, err := rt.Engine.StartProcess("Par", map[string]ocr.Value{"xs": xs}, StartOptions{Nice: true})
	if err != nil {
		t.Fatal(err)
	}
	// Overload n1 after dispatch; migration should kill its jobs and
	// the scheduler should resettle them on n2.
	migrated := 0
	rt.Sim.At(sim.Time(100*time.Millisecond), func(sim.Time) {
		rt.Cluster.SetExternalLoad("n1", 0.95)
		migrated = rt.Engine.Migrate(sched.DefaultMigrationPolicy())
	})
	rt.Run()
	finished(t, rt, id)
	if migrated == 0 {
		t.Fatal("nothing migrated off the hot node")
	}
}

func TestErrorsSurfaced(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	if _, err := rt.Engine.StartProcess("nope", nil, StartOptions{}); !errors.Is(err, ErrUnknownTemplate) {
		t.Fatalf("err = %v", err)
	}
	if err := rt.Engine.Suspend("nope", true); !errors.Is(err, ErrUnknownInstance) {
		t.Fatalf("err = %v", err)
	}
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(1)})
	rt.Run()
	finished(t, rt, id)
	if err := rt.Engine.Resume(id); !errors.Is(err, ErrBadState) {
		t.Fatalf("Resume on done instance = %v", err)
	}
	if err := rt.Engine.Abort(id, "x"); !errors.Is(err, ErrBadState) {
		t.Fatalf("Abort on done instance = %v", err)
	}
}

func TestUnregisteredProgramFailsInstance(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, `
PROCESS Ghost {
  ACTIVITY G {
    CALL no.such.program();
  }
}`)
	id := start(t, rt, "Ghost", nil)
	rt.Run()
	in, _ := rt.Engine.Instance(id)
	if in.Status != InstanceFailed || !strings.Contains(in.FailureReason, "unregistered") {
		t.Fatalf("instance = %s (%s)", in.Status, in.FailureReason)
	}
}

func TestPeriodicSnapshotBoundsWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenDisk(dir, store.DiskOptions{NoSync: true, SegmentSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rt := newRuntime(t, SimConfig{Store: st, SnapshotEvery: 5 * time.Second})
	register(t, rt, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 40; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})
	// Interrupt mid-run (after at least one snapshot), then cold-restart
	// from snapshot + WAL tail.
	rt.RunUntil(sim.Time(7 * time.Second))
	st.Close()

	st2, err := store.OpenDisk(dir, store.DiskOptions{NoSync: true, SegmentSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rt2 := newRuntime(t, SimConfig{Store: st2})
	if n, err := rt2.Engine.Recover(); err != nil || n != 1 {
		t.Fatalf("recover = %d, %v", n, err)
	}
	rt2.Run()
	in := finished(t, rt2, id)
	for i := 0; i < 40; i++ {
		if in.Outputs["doubled"].At(i).AsNum() != float64(2*i) {
			t.Fatalf("results after snapshot recovery = %v", in.Outputs["doubled"])
		}
	}
}

func TestSimTimeoutTimerCancelled(t *testing.T) {
	// A generous TIMEOUT on a fast activity must never fire: the timer is
	// armed on the virtual clock at dispatch and cancelled at completion.
	var timeouts int
	rt := newRuntime(t, SimConfig{Options: Options{OnEvent: func(ev Event) {
		if ev.Kind == EvTaskTimeout {
			timeouts++
		}
	}}})
	register(t, rt, `
PROCESS Quick {
  OUTPUT r;
  ACTIVITY A { CALL test.add(a = 1, b = 2); OUT sum; MAP sum -> r; TIMEOUT 3600; }
}`)
	id := start(t, rt, "Quick", nil)
	rt.Run()
	in := finished(t, rt, id)
	if in.Outputs["r"].AsNum() != 3 {
		t.Fatalf("outputs = %v", in.Outputs)
	}
	if timeouts != 0 {
		t.Fatalf("cancelled TIMEOUT fired %d times", timeouts)
	}
}
