package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"bioopera/internal/codec"
	"bioopera/internal/ocr"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// This file is the recovery module (§3.2): "During execution, a process
// instance is persistent both in terms of the data and the state of the
// execution. This allows BioOpera to resume execution of processes after
// failures occur without losing already completed work."
//
// Checkpoints are incremental (§3.3: granularity is the lever that trades
// durability cost against lost work). The whole-scope record of the first
// engine generation is split into delta records so one activity completion
// writes O(1) bytes, not O(scope):
//
//	inst/<id>                 instance metadata (every checkpoint)
//	scopec/<id>/<scope>       scope-create record: immutable shape, written once
//	scoped/<id>/<scope>       scope-dynamic record: owned whiteboard entries + done flag
//	task/<id>/<scope>/<task>  one record per task (root scope encodes as "-")
//	proc/<id>/<hash>          interned process text, referenced by scope-create
//	scope/<id>/<scope>        legacy whole-scope record (still read; never written)
//
// A checkpoint is snapshotted into plain DTOs under the shard lock (persist)
// and marshaled + committed after the lock is released (flushCkpt), ordered
// by a per-instance commit gate. Each batch is atomic on the store, so a
// crash mid-checkpoint never leaves a torn view; on the disk store the batch
// is one group-committed WAL append shared with other instances' checkpoints.
//
// Completed/failed instances move to the history space under the same keys.
// Recovery rebuilds instances from either layout (mixed stores recover
// cleanly); activities recorded as running are re-queued, and navigation
// decisions in flight are re-derived by re-propagating the connectors of
// terminal tasks.

type taskDTO struct {
	Name      string               `json:"name"`
	Status    TaskStatus           `json:"status"`
	Attempts  int                  `json:"attempts,omitempty"`
	Inputs    map[string]ocr.Value `json:"inputs,omitempty"`
	Outputs   map[string]ocr.Value `json:"outputs,omitempty"`
	Node      string               `json:"node,omitempty"`
	Job       string               `json:"job,omitempty"`
	AltOf     string               `json:"altOf,omitempty"`
	ReadyAt   sim.Time             `json:"readyAt,omitempty"`
	StartedAt sim.Time             `json:"startedAt,omitempty"`
	EndedAt   sim.Time             `json:"endedAt,omitempty"`
	CPUTime   time.Duration        `json:"cpuTime,omitempty"`
	// ChildWaiting and Results are derived state: recovery recomputes them
	// from the child scopes (resumeBlock/resumeChildScope), so new-layout
	// task records leave them zero — otherwise every child completion of an
	// n-wide block would re-marshal the parent's O(n) result list. They are
	// still decoded from legacy whole-scope records.
	ChildWaiting int         `json:"childWaiting,omitempty"`
	Results      []ocr.Value `json:"results,omitempty"`
	// OverElems is written once, when the parallel block expands.
	OverElems []ocr.Value `json:"overElems,omitempty"`
}

// scopeCreateDTO is the immutable part of a scope, written exactly once.
type scopeCreateDTO struct {
	ID         string `json:"id"`
	Parent     string `json:"parent"`
	IsRoot     bool   `json:"isRoot,omitempty"`
	ParentTask string `json:"parentTask,omitempty"`
	ElemIndex  int    `json:"elemIndex"`
	// ProcRef names an interned proc/<inst>/<hash> record; ProcText is the
	// inline fallback kept for robustness when decoding foreign records.
	ProcRef  string `json:"procRef,omitempty"`
	ProcText string `json:"proc,omitempty"`
}

// scopeDynDTO is the mutable part of a scope. Entries carries only the
// whiteboard keys this scope owns (explicitly set after creation); unowned
// keys re-inherit the parent scope's value on recovery, so an n-wide block's
// children never re-serialize the parent whiteboard they merely inherited.
// Drop masks keys the parent gained after this scope spawned. Full marks a
// complete whiteboard (root scopes, subprocess bodies, legacy conversions,
// archived records).
type scopeDynDTO struct {
	Entries map[string]ocr.Value `json:"entries,omitempty"`
	Drop    []string             `json:"drop,omitempty"`
	Full    bool                 `json:"full,omitempty"`
	Done    bool                 `json:"done,omitempty"`
}

// scopeDTO is the legacy whole-scope record (first engine generation).
// Recovery still decodes it; the engine never writes it.
type scopeDTO struct {
	ID         string               `json:"id"`
	Parent     string               `json:"parent"`
	IsRoot     bool                 `json:"isRoot,omitempty"`
	ParentTask string               `json:"parentTask,omitempty"`
	ElemIndex  int                  `json:"elemIndex"`
	ProcText   string               `json:"proc"`
	Whiteboard map[string]ocr.Value `json:"whiteboard"`
	Tasks      []taskDTO            `json:"tasks"`
	Done       bool                 `json:"done,omitempty"`
}

type instanceDTO struct {
	ID            string               `json:"id"`
	Template      string               `json:"template"`
	Status        InstanceStatus       `json:"status"`
	Priority      int                  `json:"priority,omitempty"`
	Nice          bool                 `json:"nice,omitempty"`
	Tenant        string               `json:"tenant,omitempty"`
	Started       sim.Time             `json:"started"`
	Ended         sim.Time             `json:"ended,omitempty"`
	Activities    int                  `json:"activities,omitempty"`
	CPU           time.Duration        `json:"cpu,omitempty"`
	Failures      int                  `json:"failures,omitempty"`
	Retries       int                  `json:"retries,omitempty"`
	Outputs       map[string]ocr.Value `json:"outputs,omitempty"`
	FailureReason string               `json:"failureReason,omitempty"`
}

func metaKey(id string) string { return "inst/" + id }

// nzScope encodes the root scope's empty ID as "-" in store keys.
func nzScope(scopeID string) string {
	if scopeID == "" {
		return "-"
	}
	return scopeID
}

func legacyScopeKey(id, scopeID string) string { return "scope/" + id + "/" + nzScope(scopeID) }
func scopeCreateKey(id, scopeID string) string { return "scopec/" + id + "/" + nzScope(scopeID) }
func scopeDynKey(id, scopeID string) string    { return "scoped/" + id + "/" + nzScope(scopeID) }
func taskKey(id, scopeID, task string) string {
	return "task/" + id + "/" + nzScope(scopeID) + "/" + task
}
func procKey(id, hash string) string { return "proc/" + id + "/" + hash }

// procHash is the content hash interned process text is stored under.
func procHash(text string) string {
	h := sha256.Sum256([]byte(text))
	return hex.EncodeToString(h[:16])
}

// markDirty indexes a scope in the instance's dirty set. Caller holds the
// shard lock.
func (in *Instance) markDirty(sc *scope) {
	if in.dirty == nil {
		in.dirty = make(map[string]*scope, 4)
	}
	in.dirty[sc.ID] = sc
}

// touchNew marks a freshly created scope: the next checkpoint writes its
// create and dynamic records (and interns its process text).
func (e *Engine) touchNew(in *Instance, sc *scope) {
	sc.newborn = true
	sc.dirtyMeta = true
	in.markDirty(sc)
}

// touchMeta marks a scope's dynamic record (whiteboard delta, done flag)
// for rewriting.
func (e *Engine) touchMeta(in *Instance, sc *scope) {
	sc.dirtyMeta = true
	in.markDirty(sc)
}

// touchTask marks one task record for rewriting — the unit of incremental
// checkpointing.
func (e *Engine) touchTask(in *Instance, sc *scope, ts *taskState) {
	if sc.dirtyTasks == nil {
		sc.dirtyTasks = make(map[string]*taskState, 4)
	}
	sc.dirtyTasks[ts.Name] = ts
	in.markDirty(sc)
}

// setWB writes one whiteboard entry through the delta-tracking layer: the
// key becomes owned by this scope's dynamic record. Live children that
// inherited the previous value pin their view first (value or absence), so
// recovery — which re-inherits unowned keys from the parent — still sees
// exactly what each child observed. Pinning one level suffices: a
// grandchild inherits from its (now explicit, unchanged) parent.
func (e *Engine) setWB(in *Instance, sc *scope, key string, v ocr.Value) {
	//bioopera:allow maprange order-independent: every child pins the same key and nothing is emitted
	for _, child := range sc.children {
		e.pinInherited(in, child, key)
	}
	sc.Whiteboard[key] = v
	sc.ownWB(key, true)
	e.touchMeta(in, sc)
}

// pinInherited makes a child's view of one inherited whiteboard key
// explicit before the parent's value changes.
func (e *Engine) pinInherited(in *Instance, sc *scope, key string) {
	if sc.wbFull {
		return // records the complete whiteboard anyway
	}
	if _, owned := sc.wbOwn[key]; owned {
		return
	}
	_, has := sc.Whiteboard[key]
	sc.ownWB(key, has)
	e.touchMeta(in, sc)
}

// ckpt is one checkpoint: the dirty subset of an instance's state,
// snapshotted into DTOs under the shard lock. Marshaling and the store
// batch run in flushCkpt after the lock is released; ckpts recycle through
// a pool so the persist hot path stays allocation-light.
type ckpt struct {
	seq     uint64
	archive bool // move everything to the history space
	meta    instanceDTO
	creates []createSnap
	dyns    []dynSnap
	tasks   []taskSnap
	procs   []procSnap
	deletes []string
	ops     []store.Op    // flusher scratch
	enc     codec.Encoder // flusher scratch: binary record buffer
}

type createSnap struct {
	sc  *scope
	dto scopeCreateDTO
}

type dynSnap struct {
	sc  *scope
	dto scopeDynDTO
}

type taskSnap struct {
	sc  *scope
	ts  *taskState
	dto taskDTO
}

type procSnap struct {
	hash string
	text string
}

var ckptPool = sync.Pool{New: func() any { return new(ckpt) }}

func getCkpt() *ckpt { return ckptPool.Get().(*ckpt) }

func putCkpt(ck *ckpt) {
	clear(ck.creates)
	clear(ck.dyns)
	clear(ck.tasks)
	clear(ck.procs)
	clear(ck.ops)
	enc := ck.enc
	enc.Reset()
	*ck = ckpt{
		creates: ck.creates[:0],
		dyns:    ck.dyns[:0],
		tasks:   ck.tasks[:0],
		procs:   ck.procs[:0],
		ops:     ck.ops[:0],
		enc:     enc,
	}
	ckptPool.Put(ck)
}

// persistError surfaces a checkpoint failure: the event stream gets an
// EvPersistError and the OnError hook (if any) fires. The engine keeps
// running — the paper's recovery guarantees degrade to the last successful
// checkpoint, but a full store must not take down month-long computations.
func (e *Engine) persistError(in *Instance, context string, err error) {
	e.emit(Event{Kind: EvPersistError, Instance: in.ID,
		Detail: fmt.Sprintf("%s: %v", context, err)})
	if e.opts.OnError != nil {
		e.opts.OnError(fmt.Errorf("core: persist %s (instance %s): %w", context, in.ID, err))
	}
}

// buildInstanceDTO snapshots instance metadata. Outputs is shared: it is
// built once at completion and never mutated afterwards.
func buildInstanceDTO(in *Instance) instanceDTO {
	return instanceDTO{
		ID: in.ID, Template: in.Template, Status: in.Status,
		Priority: in.Priority, Nice: in.Nice, Tenant: in.Tenant,
		Started: in.Started, Ended: in.Ended,
		Activities: in.Activities, CPU: in.CPU,
		Failures: in.Failures, Retries: in.Retries,
		Outputs: in.Outputs, FailureReason: in.FailureReason,
	}
}

// buildTaskDTO snapshots one task. Outputs is copied — an alternative's
// completion mutates the shared output map after the original's snapshot —
// while Inputs and OverElems are immutable once set and are shared.
// ChildWaiting and Results are derived state and are omitted (see taskDTO).
func buildTaskDTO(ts *taskState) taskDTO {
	dto := taskDTO{
		Name: ts.Name, Status: ts.Status, Attempts: ts.Attempts,
		Inputs: ts.Inputs,
		Node:   ts.Node, Job: ts.Job, AltOf: ts.AltOf,
		ReadyAt: ts.ReadyAt, StartedAt: ts.StartedAt, EndedAt: ts.EndedAt,
		CPUTime:   ts.CPUTime,
		OverElems: ts.OverElems,
	}
	if len(ts.Outputs) > 0 {
		dto.Outputs = make(map[string]ocr.Value, len(ts.Outputs))
		for k, v := range ts.Outputs {
			dto.Outputs[k] = v
		}
	}
	return dto
}

// buildDynDTO snapshots a scope's dynamic record. Maps are copied so the
// flusher can marshal after the shard lock is released.
func buildDynDTO(sc *scope, full bool) scopeDynDTO {
	dto := scopeDynDTO{Done: sc.Done}
	if full || sc.wbFull {
		dto.Full = true
		if len(sc.Whiteboard) > 0 {
			dto.Entries = make(map[string]ocr.Value, len(sc.Whiteboard))
			for k, v := range sc.Whiteboard {
				dto.Entries[k] = v
			}
		}
		return dto
	}
	for k, present := range sc.wbOwn {
		if present {
			if dto.Entries == nil {
				dto.Entries = make(map[string]ocr.Value, len(sc.wbOwn))
			}
			dto.Entries[k] = sc.Whiteboard[k]
		} else {
			dto.Drop = append(dto.Drop, k)
		}
	}
	sort.Strings(dto.Drop)
	return dto
}

// buildCreateDTO snapshots a scope's immutable create record; the process
// text itself is interned separately under its content hash.
func buildCreateDTO(sc *scope, procRef string) scopeCreateDTO {
	dto := scopeCreateDTO{
		ID:         sc.ID,
		IsRoot:     sc.Parent == nil,
		ParentTask: sc.ParentTask,
		ElemIndex:  sc.ElemIndex,
		ProcRef:    procRef,
	}
	if sc.Parent != nil {
		dto.Parent = sc.Parent.ID
	}
	return dto
}

// snapshotScope captures one scope's dirty records into the checkpoint and
// clears its dirty flags. With archive set, everything is captured
// regardless of dirtiness (proc interning is then handled by archive).
func (e *Engine) snapshotScope(in *Instance, ck *ckpt, sc *scope, archive bool) {
	if sc.newborn || archive {
		text := sc.procText()
		hash := procHash(text)
		if !archive {
			if in.procRefs == nil {
				in.procRefs = make(map[string]bool, 4)
			}
			if !in.procRefs[hash] {
				in.procRefs[hash] = true
				ck.procs = append(ck.procs, procSnap{hash: hash, text: text})
			}
		}
		ck.creates = append(ck.creates, createSnap{sc: sc, dto: buildCreateDTO(sc, hash)})
	}
	if sc.newborn || sc.dirtyMeta || archive {
		ck.dyns = append(ck.dyns, dynSnap{sc: sc, dto: buildDynDTO(sc, archive)})
	}
	if archive {
		for _, t := range sc.Proc.Tasks {
			ts := sc.Tasks[t.Name]
			ck.tasks = append(ck.tasks, taskSnap{sc: sc, ts: ts, dto: buildTaskDTO(ts)})
		}
		clear(sc.dirtyTasks)
	} else if len(sc.dirtyTasks) > 0 {
		names := make([]string, 0, len(sc.dirtyTasks))
		for name := range sc.dirtyTasks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ts := sc.dirtyTasks[name]
			ck.tasks = append(ck.tasks, taskSnap{sc: sc, ts: ts, dto: buildTaskDTO(ts)})
		}
		clear(sc.dirtyTasks)
	}
	sc.newborn = false
	sc.dirtyMeta = false
}

// persist snapshots the instance's dirty state as one checkpoint. The
// caller holds the shard lock; the snapshot is cheap (DTO structs and map
// copies for fields that can mutate before the flush) — JSON marshaling
// and the store batch happen in flushCkpt once endTurn releases the lock.
func (e *Engine) persist(in *Instance) {
	ck := getCkpt()
	ck.seq = in.nextCkptSeq()
	ck.meta = buildInstanceDTO(in)
	if len(in.dirty) > 0 {
		ids := make([]string, 0, len(in.dirty))
		for id := range in.dirty {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			e.snapshotScope(in, ck, in.dirty[id], false)
		}
		clear(in.dirty)
	}
	ck.deletes = in.pendingDeletes
	in.pendingDeletes = nil
	in.pendingCkpts = append(in.pendingCkpts, ck)
}

// archive snapshots a finished instance completely and flags the checkpoint
// to move every record to the history space (§3.2: "the data space contains
// historical information about all processes already executed"). The bytes
// are marshaled once by the flusher — no store re-reads — and one atomic
// batch writes history and clears the instance space, so a crash mid-archive
// never leaves an instance half in each. Caller holds the shard lock.
func (e *Engine) archive(in *Instance) {
	ck := getCkpt()
	ck.seq = in.nextCkptSeq()
	ck.archive = true
	ck.meta = buildInstanceDTO(in)
	ids := make([]string, 0, len(in.scopes))
	for id := range in.scopes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	seen := make(map[string]bool, 2)
	for _, id := range ids {
		sc := in.scopes[id]
		text := sc.procText()
		hash := procHash(text)
		if !seen[hash] {
			seen[hash] = true
			ck.procs = append(ck.procs, procSnap{hash: hash, text: text})
		}
		e.snapshotScope(in, ck, sc, true)
	}
	// Interned texts no live scope references anymore (sphere-aborted
	// bodies): delete their instance-space records.
	var orphans []string
	for hash := range in.procRefs {
		if !seen[hash] {
			orphans = append(orphans, hash)
		}
	}
	sort.Strings(orphans)
	for i, hash := range orphans {
		orphans[i] = procKey(in.ID, hash)
	}
	ck.deletes = append(in.pendingDeletes, orphans...)
	in.pendingDeletes = nil
	clear(in.dirty)
	in.pendingCkpts = append(in.pendingCkpts, ck)
}

// flushCkpt encodes one checkpoint through the binary codec and commits it
// to the store — after the shard lock is released. The per-instance commit
// gate admits checkpoints strictly in sequence order, so a later one can
// never overtake an earlier one even when the instance's turns end on
// different goroutines; batches of different instances still overlap and
// share group-committed fsyncs. Binary encoding is total, so there is no
// per-record marshal failure path — only the batch itself can fail.
func (e *Engine) flushCkpt(in *Instance, ck *ckpt) {
	start := e.now()
	space := store.Instance
	if ck.archive {
		space = store.History
	}
	ops, bytes := encodeCkpt(in, ck, space)
	records := len(ops)
	if ck.archive {
		// One pass: the history puts above reuse the marshaled bytes, and
		// the same batch clears every instance-space record — both record
		// shapes, so archives of converted legacy instances leave nothing
		// behind.
		ops = append(ops, store.Op{Space: store.Instance, Key: metaKey(in.ID), Delete: true})
		for i := range ck.creates {
			id := ck.creates[i].dto.ID
			ops = append(ops,
				store.Op{Space: store.Instance, Key: scopeCreateKey(in.ID, id), Delete: true},
				store.Op{Space: store.Instance, Key: scopeDynKey(in.ID, id), Delete: true},
				store.Op{Space: store.Instance, Key: legacyScopeKey(in.ID, id), Delete: true})
		}
		for i := range ck.tasks {
			ops = append(ops, store.Op{Space: store.Instance, Key: taskKey(in.ID, ck.tasks[i].sc.ID, ck.tasks[i].dto.Name), Delete: true})
		}
		for _, ps := range ck.procs {
			ops = append(ops, store.Op{Space: store.Instance, Key: procKey(in.ID, ps.hash), Delete: true})
		}
	}
	for _, key := range ck.deletes {
		ops = append(ops, store.Op{Space: store.Instance, Key: key, Delete: true})
	}
	ck.ops = ops
	e.metrics.checkpoint(e.now().Sub(start), bytes, records)

	// Commit through the gate, strictly in sequence order.
	in.gateMu.Lock()
	if in.gateCond == nil {
		in.gateCond = sync.NewCond(&in.gateMu)
	}
	for in.ckptDone != ck.seq {
		in.gateCond.Wait()
	}
	var err error
	fenced := len(ops) > 0 && e.opts.Owns != nil && !e.opts.Owns(in.ID)
	if fenced {
		// Ownership write fence: the instance's partition moved to another
		// server (lease lost, or this member is shutting down) after the
		// checkpoint was cut. The new owner recovered from the last owned
		// checkpoint and is now authoritative; committing this batch would
		// clobber its records — or, for an archive, delete the very records
		// it adopts from — so the batch is dropped, not written.
		e.metrics.fenced()
	} else if len(ops) > 0 {
		err = e.opts.Store.Batch(ops)
	}
	// The gate always advances — even on error — so Crash's quiesce wait
	// and later checkpoints never hang on a failed one.
	in.ckptDone++
	in.gateCond.Broadcast()
	in.gateMu.Unlock()

	if err != nil {
		e.persistError(in, "checkpoint batch", err)
		e.remarkCkpt(in, ck)
	}
	putCkpt(ck)
}

// remarkCkpt re-dirties everything a failed batch carried: scopes still
// live re-mark their records, interned texts forget their hashes so a
// later create re-writes them, and pending deletes are re-queued.
func (e *Engine) remarkCkpt(in *Instance, ck *ckpt) {
	mu := e.shardFor(in.ID)
	mu.Lock()
	live := func(sc *scope) bool { return in.scopes[sc.ID] == sc }
	for i := range ck.creates {
		if sc := ck.creates[i].sc; live(sc) {
			sc.newborn = true
			in.markDirty(sc)
		}
	}
	for i := range ck.dyns {
		if sc := ck.dyns[i].sc; live(sc) {
			sc.dirtyMeta = true
			in.markDirty(sc)
		}
	}
	for i := range ck.tasks {
		sc, ts := ck.tasks[i].sc, ck.tasks[i].ts
		if !live(sc) {
			continue
		}
		if sc.dirtyTasks == nil {
			sc.dirtyTasks = make(map[string]*taskState, 4)
		}
		sc.dirtyTasks[ts.Name] = ts
		in.markDirty(sc)
	}
	for _, ps := range ck.procs {
		delete(in.procRefs, ps.hash)
	}
	in.pendingDeletes = append(in.pendingDeletes, ck.deletes...)
	mu.Unlock()
}

// nextCkptSeq takes the next checkpoint sequence number. The counter
// lives under gateMu so quiesceCkpts can read it while another
// goroutine's turn is still cutting checkpoints; the caller holds the
// shard lock, so per-turn sequence order is still total.
func (in *Instance) nextCkptSeq() uint64 {
	in.gateMu.Lock()
	seq := in.ckptSeq
	in.ckptSeq++
	in.gateMu.Unlock()
	return seq
}

// quiesceCkpts blocks until every in-flight checkpoint flush of the
// instance has passed the commit gate. Callers must guarantee no new
// checkpoints are being produced (Crash holds every shard) or must not
// care about later turns (quiesceInstance synchronizes on the shard
// first, so all checkpoints of already-completed turns are covered).
func (in *Instance) quiesceCkpts() {
	in.gateMu.Lock()
	if in.gateCond == nil {
		in.gateCond = sync.NewCond(&in.gateMu)
	}
	for in.ckptDone != in.ckptSeq {
		in.gateCond.Wait()
	}
	in.gateMu.Unlock()
}

// quiesceInstance blocks until every checkpoint produced by turns of in
// that completed before the call has cleared its commit gate. Taking the
// shard synchronizes with any turn still inside its critical section, so
// that turn's checkpoint sequence is visible to the gate wait; the flush
// itself runs lock-free after the turn, so this cannot deadlock.
//
// An instance's terminal status becomes observable inside its final turn,
// before that turn's archive batch flushes — anyone who sees Done/Failed
// and then closes the store must quiesce in between (Wait does).
func (e *Engine) quiesceInstance(in *Instance) {
	mu := e.shardFor(in.ID)
	mu.Lock()
	mu.Unlock()
	in.quiesceCkpts()
}

// QuiesceCheckpoints blocks until every checkpoint produced by turns that
// completed before the call has cleared its commit gate, across all
// instances. Runtime Close paths call it so the caller can close the
// store without racing an in-flight flush.
func (e *Engine) QuiesceCheckpoints() {
	e.emu.RLock()
	ins := make([]*Instance, 0, len(e.instances))
	for _, in := range e.instances {
		ins = append(ins, in)
	}
	e.emu.RUnlock()
	for _, in := range ins {
		e.quiesceInstance(in)
	}
}
