package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sim"
	"bioopera/internal/store"
)

// This file is the recovery module (§3.2): "During execution, a process
// instance is persistent both in terms of the data and the state of the
// execution. This allows BioOpera to resume execution of processes after
// failures occur without losing already completed work."
//
// Layout in the instance space:
//
//	inst/<id>            instance metadata
//	scope/<id>/<scope>   one record per scope (root scope name is "-")
//
// Completed/failed instances move to the history space under the same
// keys. Recovery rebuilds instances from these records; activities that
// were recorded as running (dispatched, no completion recorded) are
// re-queued, and navigation decisions that were in flight are re-derived
// by re-propagating the connectors of terminal tasks.

type taskDTO struct {
	Name         string               `json:"name"`
	Status       TaskStatus           `json:"status"`
	Attempts     int                  `json:"attempts,omitempty"`
	Inputs       map[string]ocr.Value `json:"inputs,omitempty"`
	Outputs      map[string]ocr.Value `json:"outputs,omitempty"`
	Node         string               `json:"node,omitempty"`
	Job          string               `json:"job,omitempty"`
	AltOf        string               `json:"altOf,omitempty"`
	ReadyAt      sim.Time             `json:"readyAt,omitempty"`
	StartedAt    sim.Time             `json:"startedAt,omitempty"`
	EndedAt      sim.Time             `json:"endedAt,omitempty"`
	CPUTime      time.Duration        `json:"cpuTime,omitempty"`
	ChildWaiting int                  `json:"childWaiting,omitempty"`
	Results      []ocr.Value          `json:"results,omitempty"`
	OverElems    []ocr.Value          `json:"overElems,omitempty"`
}

type scopeDTO struct {
	ID         string               `json:"id"`
	Parent     string               `json:"parent"`
	IsRoot     bool                 `json:"isRoot,omitempty"`
	ParentTask string               `json:"parentTask,omitempty"`
	ElemIndex  int                  `json:"elemIndex"`
	ProcText   string               `json:"proc"`
	Whiteboard map[string]ocr.Value `json:"whiteboard"`
	Tasks      []taskDTO            `json:"tasks"`
	Done       bool                 `json:"done,omitempty"`
}

type instanceDTO struct {
	ID            string               `json:"id"`
	Template      string               `json:"template"`
	Status        InstanceStatus       `json:"status"`
	Priority      int                  `json:"priority,omitempty"`
	Nice          bool                 `json:"nice,omitempty"`
	Started       sim.Time             `json:"started"`
	Ended         sim.Time             `json:"ended,omitempty"`
	Activities    int                  `json:"activities,omitempty"`
	CPU           time.Duration        `json:"cpu,omitempty"`
	Failures      int                  `json:"failures,omitempty"`
	Retries       int                  `json:"retries,omitempty"`
	Outputs       map[string]ocr.Value `json:"outputs,omitempty"`
	FailureReason string               `json:"failureReason,omitempty"`
}

func metaKey(id string) string { return "inst/" + id }

func scopeKey(id, scopeID string) string {
	if scopeID == "" {
		scopeID = "-"
	}
	return "scope/" + id + "/" + scopeID
}

// touch marks a scope as needing persistence.
func (e *Engine) touch(sc *scope) { sc.dirty = true }

// persistError surfaces a checkpoint failure: the event stream gets an
// EvPersistError and the OnError hook (if any) fires. The engine keeps
// running — the paper's recovery guarantees degrade to the last successful
// checkpoint, but a full store must not take down month-long computations.
func (e *Engine) persistError(in *Instance, context string, err error) {
	e.emit(Event{Kind: EvPersistError, Instance: in.ID,
		Detail: fmt.Sprintf("%s: %v", context, err)})
	if e.opts.OnError != nil {
		e.opts.OnError(fmt.Errorf("core: persist %s (instance %s): %w", context, in.ID, err))
	}
}

// persist checkpoints the instance metadata and every dirty scope as one
// atomic store batch, so a crash mid-checkpoint never leaves the store
// with a torn view of the instance (metadata from the new state, scopes
// from the old). On the disk store the batch is one group-committed WAL
// append — one fsync per checkpoint instead of one per record.
func (e *Engine) persist(in *Instance) {
	meta := instanceDTO{
		ID: in.ID, Template: in.Template, Status: in.Status,
		Priority: in.Priority, Nice: in.Nice,
		Started: in.Started, Ended: in.Ended,
		Activities: in.Activities, CPU: in.CPU,
		Failures: in.Failures, Retries: in.Retries,
		Outputs: in.Outputs, FailureReason: in.FailureReason,
	}
	ops := make([]store.Op, 0, 1+len(in.scopes))
	if data, err := json.Marshal(meta); err != nil {
		e.persistError(in, "marshal metadata", err)
	} else {
		ops = append(ops, store.Op{Space: store.Instance, Key: metaKey(in.ID), Value: data})
	}
	// Deterministic scope order.
	ids := make([]string, 0, len(in.scopes))
	for id, sc := range in.scopes {
		if sc.dirty {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	flushed := make([]*scope, 0, len(ids))
	for _, id := range ids {
		sc := in.scopes[id]
		data, err := json.Marshal(scopeToDTO(sc))
		if err != nil {
			// The scope stays dirty; a later checkpoint retries it.
			e.persistError(in, "marshal scope "+scopeKey(in.ID, id), err)
			continue
		}
		ops = append(ops, store.Op{Space: store.Instance, Key: scopeKey(in.ID, id), Value: data})
		flushed = append(flushed, sc)
	}
	if len(ops) == 0 {
		return
	}
	if err := e.opts.Store.Batch(ops); err != nil {
		e.persistError(in, "checkpoint batch", err)
		return // everything stays dirty for the next checkpoint
	}
	for _, sc := range flushed {
		sc.dirty = false
	}
}

func scopeToDTO(sc *scope) scopeDTO {
	dto := scopeDTO{
		ID:         sc.ID,
		IsRoot:     sc.Parent == nil,
		ParentTask: sc.ParentTask,
		ElemIndex:  sc.ElemIndex,
		ProcText:   sc.procText(),
		Whiteboard: sc.Whiteboard,
		Done:       sc.Done,
	}
	if sc.Parent != nil {
		dto.Parent = sc.Parent.ID
	}
	for _, t := range sc.Proc.Tasks {
		ts := sc.Tasks[t.Name]
		dto.Tasks = append(dto.Tasks, taskDTO{
			Name: ts.Name, Status: ts.Status, Attempts: ts.Attempts,
			Inputs: ts.Inputs, Outputs: ts.Outputs,
			Node: ts.Node, Job: ts.Job, AltOf: ts.AltOf,
			ReadyAt: ts.ReadyAt, StartedAt: ts.StartedAt, EndedAt: ts.EndedAt,
			CPUTime: ts.CPUTime, ChildWaiting: ts.ChildWaiting,
			Results: ts.Results, OverElems: ts.OverElems,
		})
	}
	return dto
}

// archive moves a finished instance's records from the instance space to
// the history space (§3.2: "the data space contains historical information
// about all processes already executed").
func (e *Engine) archive(in *Instance) {
	s := e.opts.Store
	// Force a final full persist so history is complete.
	for _, sc := range in.scopes {
		sc.dirty = true
	}
	e.persist(in)
	keys := make([]string, 0, 1+len(in.scopes))
	keys = append(keys, metaKey(in.ID))
	ids := make([]string, 0, len(in.scopes))
	for id := range in.scopes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		keys = append(keys, scopeKey(in.ID, id))
	}
	// One atomic batch moves every record: a crash mid-archive never
	// leaves an instance half in the instance space, half in history.
	ops := make([]store.Op, 0, 2*len(keys))
	for _, key := range keys {
		v, ok, err := s.Get(store.Instance, key)
		if err != nil {
			e.persistError(in, "archive read "+key, err)
			continue
		}
		if !ok {
			continue
		}
		ops = append(ops, store.Op{Space: store.History, Key: key, Value: v})
		ops = append(ops, store.Op{Space: store.Instance, Key: key, Delete: true})
	}
	if len(ops) == 0 {
		return
	}
	if err := s.Batch(ops); err != nil {
		e.persistError(in, "archive batch", err)
	}
}

// Recover rebuilds all unfinished instances from the store after a server
// restart or crash. Activities recorded as running are treated as lost
// and re-queued; in-flight navigation is re-derived. It returns the
// number of instances recovered.
func (e *Engine) Recover() (int, error) {
	kvs, err := e.opts.Store.List(store.Instance)
	if err != nil {
		return 0, err
	}
	metas := map[string]instanceDTO{}
	scopes := map[string][]scopeDTO{} // instance ID → scope records
	for _, kv := range kvs {
		switch {
		case strings.HasPrefix(kv.Key, "inst/"):
			var dto instanceDTO
			if err := json.Unmarshal(kv.Value, &dto); err != nil {
				return 0, fmt.Errorf("core: corrupt instance record %s: %w", kv.Key, err)
			}
			metas[dto.ID] = dto
		case strings.HasPrefix(kv.Key, "scope/"):
			rest := strings.TrimPrefix(kv.Key, "scope/")
			slash := strings.IndexByte(rest, '/')
			if slash < 0 {
				continue
			}
			instID := rest[:slash]
			var dto scopeDTO
			if err := json.Unmarshal(kv.Value, &dto); err != nil {
				return 0, fmt.Errorf("core: corrupt scope record %s: %w", kv.Key, err)
			}
			scopes[instID] = append(scopes[instID], dto)
		}
	}

	ids := make([]string, 0, len(metas))
	for id := range metas {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	recovered := 0
	for _, id := range ids {
		meta := metas[id]
		if _, exists := e.lookup(id); exists {
			continue // already live (Recover on a running engine)
		}
		// Rebuild under the instance's shard so concurrent pumps that
		// pick up the requeued work serialize against the rebuild.
		mu := e.shardFor(id)
		mu.Lock()
		in, err := e.rebuildInstance(meta, scopes[id])
		if err != nil {
			mu.Unlock()
			return recovered, err
		}
		e.emu.Lock()
		e.instances[id] = in
		e.order = append(e.order, id)
		// Track the numeric suffix so new IDs stay unique.
		var n int
		if _, err := fmt.Sscanf(id, "p%d", &n); err == nil && n > e.nextID {
			e.nextID = n
		}
		e.emu.Unlock()
		recovered++
		e.emit(Event{Kind: EvServerRecovered, Instance: id,
			Detail: fmt.Sprintf("status=%s", in.Status)})
		e.endTurn(in, mu, false)
	}
	e.Pump()
	return recovered, nil
}

// rebuildInstance reconstructs one instance from its records and resumes
// navigation.
func (e *Engine) rebuildInstance(meta instanceDTO, scopeDTOs []scopeDTO) (*Instance, error) {
	in := &Instance{
		ID: meta.ID, Template: meta.Template,
		Priority: meta.Priority, Nice: meta.Nice,
		Started: meta.Started, Ended: meta.Ended,
		Activities: meta.Activities, CPU: meta.CPU,
		Failures: meta.Failures, Retries: meta.Retries,
		Outputs: meta.Outputs, FailureReason: meta.FailureReason,
		scopes: make(map[string]*scope),
	}
	in.setStatus(meta.Status)
	// Sort records so parents come before children (shorter IDs first;
	// root "" is shortest).
	sort.Slice(scopeDTOs, func(i, j int) bool {
		if len(scopeDTOs[i].ID) != len(scopeDTOs[j].ID) {
			return len(scopeDTOs[i].ID) < len(scopeDTOs[j].ID)
		}
		return scopeDTOs[i].ID < scopeDTOs[j].ID
	})
	for _, dto := range scopeDTOs {
		proc, err := ocr.ParseProcess(dto.ProcText)
		if err != nil {
			return nil, fmt.Errorf("core: scope %s/%s has invalid process text: %w", meta.ID, dto.ID, err)
		}
		sc := &scope{
			ID:         dto.ID,
			Proc:       proc,
			ParentTask: dto.ParentTask,
			ElemIndex:  dto.ElemIndex,
			Whiteboard: dto.Whiteboard,
			Tasks:      make(map[string]*taskState),
			Done:       dto.Done,
			children:   make(map[string]*scope),
		}
		if sc.Whiteboard == nil {
			sc.Whiteboard = make(map[string]ocr.Value)
		}
		if !dto.IsRoot {
			parent := in.scopes[dto.Parent]
			if parent == nil {
				return nil, fmt.Errorf("core: scope %s/%s has missing parent %q", meta.ID, dto.ID, dto.Parent)
			}
			sc.Parent = parent
			parent.children[sc.ID] = sc
		} else {
			in.root = sc
		}
		for _, td := range dto.Tasks {
			sc.Tasks[td.Name] = &taskState{
				Name: td.Name, Status: td.Status, Attempts: td.Attempts,
				Inputs: td.Inputs, Outputs: td.Outputs,
				Node: td.Node, Job: td.Job, AltOf: td.AltOf,
				ReadyAt: td.ReadyAt, StartedAt: td.StartedAt, EndedAt: td.EndedAt,
				CPUTime: td.CPUTime, ChildWaiting: td.ChildWaiting,
				Results: td.Results, OverElems: td.OverElems,
				ConnIn: make([]connState, len(proc.Incoming(td.Name))),
			}
		}
		// Tasks present in the process but missing from the record
		// (older snapshot) start inactive.
		for _, t := range proc.Tasks {
			if _, ok := sc.Tasks[t.Name]; !ok {
				sc.Tasks[t.Name] = &taskState{
					Name:   t.Name,
					ConnIn: make([]connState, len(proc.Incoming(t.Name))),
				}
			}
		}
		in.scopes[sc.ID] = sc
	}
	if in.root == nil {
		return nil, fmt.Errorf("core: instance %s has no root scope record", meta.ID)
	}

	if in.Status == InstanceDone || in.Status == InstanceFailed {
		return in, nil
	}

	// Resume execution state, children before parents.
	ordered := make([]*scope, 0, len(in.scopes))
	for _, sc := range in.scopes {
		ordered = append(ordered, sc)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if len(ordered[i].ID) != len(ordered[j].ID) {
			return len(ordered[i].ID) > len(ordered[j].ID)
		}
		return ordered[i].ID < ordered[j].ID
	})
	for _, sc := range ordered {
		e.resumeScope(in, sc)
		if in.Status == InstanceFailed {
			return in, nil
		}
	}
	for _, sc := range ordered {
		e.maybeCompleteScope(in, sc)
		if in.Status == InstanceFailed || in.Status == InstanceDone {
			break
		}
	}
	return in, nil
}

// resumeScope restores per-task execution state of one scope: requeues
// lost work, respawns missing child scopes, and re-derives connector
// decisions for tasks that never activated.
func (e *Engine) resumeScope(in *Instance, sc *scope) {
	for _, t := range sc.Proc.Tasks {
		ts := sc.Tasks[t.Name]
		switch ts.Status {
		case TaskReady:
			// Was queued; re-queue.
			e.requeue(in, sc, t, ts)
		case TaskRunning:
			switch t.Kind {
			case ocr.KindActivity:
				if t.Await != "" {
					// Still waiting for its event; re-arm
					// the wait (signals buffered before the
					// crash are volatile and lost, as is a
					// signal — the sender re-sends).
					ts.Status = TaskInactive
					e.awaitEvent(in, sc, t, ts)
					continue
				}
				// Dispatched but no completion recorded: the
				// work is lost; re-queue (§3.3:
				// checkpointing at activity granularity).
				in.Failures++
				in.Retries++
				ts.Status = TaskReady
				ts.Node = ""
				e.emit(Event{Kind: EvTaskRetried, Instance: in.ID, Scope: sc.ID,
					Task: t.Name, Detail: "lost in server crash"})
				e.requeue(in, sc, t, ts)
			case ocr.KindBlock:
				e.resumeBlock(in, sc, t, ts)
			case ocr.KindSubprocess:
				e.resumeChildScope(in, sc, t, ts, func() {
					ts.ChildWaiting = 1
					e.spawnSubprocess(in, sc, t, ts)
				})
			}
		}
	}
	// Root activations are unconditional at scope start, so a root still
	// inactive in the checkpoint means its activation was lost (crash
	// between the scope's first checkpoint and the next one). Re-derive
	// it; activateTask is a no-op for tasks past inactive.
	if !sc.Done {
		e.activateRoots(in, sc)
		if in.Status == InstanceFailed {
			return
		}
	}
	// Re-derive connector decisions from terminal tasks so targets that
	// had not yet activated (or whose activation was not persisted)
	// activate now. Delivery skips targets that are no longer
	// inactive.
	for _, t := range sc.Proc.Tasks {
		ts := sc.Tasks[t.Name]
		if ts.Status == TaskEnded || ts.Status == TaskDead {
			e.propagate(in, sc, t, ts)
			if in.Status == InstanceFailed {
				return
			}
		}
	}
	e.touch(sc)
}

// resumeChildScope handles a Running block/subprocess task whose single
// child scope may be missing (respawn) or already Done (redeliver its
// outputs — the crash happened between child completion and parent
// delivery).
func (e *Engine) resumeChildScope(in *Instance, sc *scope, t *ocr.Task, ts *taskState, respawn func()) {
	childID := scopePath(sc, t.Name, -1)
	child, ok := in.scopes[childID]
	if !ok {
		respawn()
		return
	}
	if child.Done {
		outputs := make(map[string]ocr.Value, len(child.Proc.Outputs))
		for _, o := range child.Proc.Outputs {
			if v, ok := child.Whiteboard[o]; ok {
				outputs[o] = v
			} else {
				outputs[o] = ocr.Null
			}
		}
		e.finishTask(in, sc, t, ts, outputs)
	}
}

// resumeBlock recreates block child scopes whose records were lost (crash
// between block activation and child persistence) and redelivers results
// from children that completed but whose delivery was not persisted.
func (e *Engine) resumeBlock(in *Instance, sc *scope, t *ocr.Task, ts *taskState) {
	if !t.Parallel {
		e.resumeChildScope(in, sc, t, ts, func() {
			child := e.newScope(in, sc, t.Name, -1, t.Body)
			copyWhiteboard(child, sc)
			ts.ChildWaiting = 1
			e.startScope(in, child)
		})
		return
	}
	n := len(ts.OverElems)
	if n == 0 {
		return
	}
	if len(ts.Results) != n {
		ts.Results = make([]ocr.Value, n)
	}
	waiting := 0
	var missing []int
	for i := 0; i < n; i++ {
		childID := scopePath(sc, t.Name, i)
		child, ok := in.scopes[childID]
		if ok {
			if child.Done {
				// Recompute the element result: delivery may
				// not have been persisted.
				ts.Results[i] = elementResult(child)
			} else {
				waiting++
			}
			continue
		}
		missing = append(missing, i)
		waiting++
	}
	ts.ChildWaiting = waiting
	e.touch(sc)
	if waiting == 0 {
		e.finishTask(in, sc, t, ts, map[string]ocr.Value{
			"results": ocr.List(ts.Results...),
		})
		return
	}
	for _, i := range missing {
		child := e.newScope(in, sc, t.Name, i, t.Body)
		copyWhiteboard(child, sc)
		child.Whiteboard[t.As] = ts.OverElems[i]
		e.startScope(in, child)
	}
}
