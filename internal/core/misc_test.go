package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/sim"
)

func TestLibraryBasics(t *testing.T) {
	lib := NewLibrary()
	if err := lib.Register(Program{Name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := lib.Register(Program{Name: "x"}); err == nil {
		t.Fatal("nil Run accepted")
	}
	lib.RegisterFunc("b.two", func(ProgramCtx, map[string]ocr.Value) (map[string]ocr.Value, error) { return nil, nil })
	lib.RegisterFunc("a.one", func(ProgramCtx, map[string]ocr.Value) (map[string]ocr.Value, error) { return nil, nil })
	names := lib.Names()
	if len(names) != 2 || names[0] != "a.one" || names[1] != "b.two" {
		t.Fatalf("Names = %v", names)
	}
	if _, ok := lib.Lookup("a.one"); !ok {
		t.Fatal("Lookup failed")
	}
	if _, ok := lib.Lookup("ghost"); ok {
		t.Fatal("Lookup(ghost) succeeded")
	}
}

func TestEngineTemplatesAPI(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, linearSrc)
	names := rt.Engine.Templates()
	if len(names) != 1 || names[0] != "Linear" {
		t.Fatalf("Templates = %v", names)
	}
	p, ok := rt.Engine.Template("Linear")
	if !ok || p.Name != "Linear" {
		t.Fatal("Template lookup failed")
	}
	// The returned template is a copy.
	p.Name = "Mutated"
	if _, ok := rt.Engine.Template("Mutated"); ok {
		t.Fatal("Template returned a shared pointer")
	}
	if _, ok := rt.Engine.Template("nope"); ok {
		t.Fatal("unknown template found")
	}
	// Invalid template rejected.
	bad, _ := ocr.ParseProcess(`PROCESS Bad { ACTIVITY A { CALL x.y(); } A -> A; }`)
	if bad != nil {
		if err := rt.Engine.RegisterTemplate(bad); err == nil {
			t.Fatal("self-loop template accepted")
		}
	}
	if err := rt.Engine.RegisterTemplateSource("PROCESS {"); err == nil {
		t.Fatal("garbage source accepted")
	}
}

func TestPauseAllBlocksEveryInstance(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, linearSrc)
	id1 := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(1)})
	id2 := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(2), "b": ocr.Num(2)})
	rt.Engine.PauseAll()
	var midRunning int
	rt.Sim.At(sim.Time(30*time.Second), func(sim.Time) {
		midRunning = rt.Engine.RunningJobs()
		rt.Engine.ResumeAll()
	})
	rt.Run()
	// PauseAll was called before any dispatch: nothing may have run
	// until ResumeAll.
	if midRunning != 0 {
		t.Fatalf("jobs ran while paused: %d", midRunning)
	}
	for _, id := range []string{id1, id2} {
		finished(t, rt, id)
	}
}

func TestTrackerControls(t *testing.T) {
	rt := newRuntime(t, SimConfig{TrackEvery: time.Second})
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(1)})
	rt.Tracker.Annotate(rt.Sim.Now(), "start")
	// The tracker ticks forever; bound the run instead of draining.
	rt.RunUntil(sim.Time(10 * time.Second))
	finished(t, rt, id)
	if len(rt.Tracker.Samples()) < 2 {
		t.Fatalf("samples = %d", len(rt.Tracker.Samples()))
	}
	if got := rt.Tracker.Annotations(); len(got) != 1 || got[0].Label != "start" {
		t.Fatalf("annotations = %v", got)
	}
	if rt.Tracker.PeakBusy() < 1 {
		t.Fatal("peak busy = 0 despite work")
	}
	if u := rt.Tracker.MeanUtilization(); u <= 0 || u > 1 {
		t.Fatalf("mean utilization = %v", u)
	}
	rt.Tracker.Stop()
	n := len(rt.Tracker.Samples())
	rt.RunUntil(sim.Time(20 * time.Second))
	if len(rt.Tracker.Samples()) != n {
		t.Fatal("tracker sampled after Stop")
	}
}

func TestSuspendStates(t *testing.T) {
	rt := newRuntime(t, SimConfig{})
	register(t, rt, linearSrc)
	id := start(t, rt, "Linear", map[string]ocr.Value{"a": ocr.Num(1), "b": ocr.Num(1)})
	if err := rt.Engine.Suspend(id, true); err != nil {
		t.Fatal(err)
	}
	// Double suspend is a state error.
	if err := rt.Engine.Suspend(id, true); !errors.Is(err, ErrBadState) {
		t.Fatalf("double suspend = %v", err)
	}
	if err := rt.Engine.Resume(id); err != nil {
		t.Fatal(err)
	}
	if err := rt.Engine.Resume(id); !errors.Is(err, ErrBadState) {
		t.Fatalf("double resume = %v", err)
	}
	rt.Run()
	finished(t, rt, id)
}

func TestStatusStrings(t *testing.T) {
	for _, c := range []struct {
		s    interface{ String() string }
		want string
	}{
		{TaskInactive, "inactive"},
		{TaskReady, "ready"},
		{TaskRunning, "running"},
		{TaskEnded, "ended"},
		{TaskFailed, "failed"},
		{TaskDead, "dead"},
		{InstanceRunning, "running"},
		{InstanceSuspended, "suspended"},
		{InstanceDone, "done"},
		{InstanceFailed, "failed"},
	} {
		if got := c.s.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if !strings.Contains(TaskStatus(99).String(), "status") {
		t.Error("out-of-range task status string")
	}
	if !strings.Contains(InstanceStatus(99).String(), "status") {
		t.Error("out-of-range instance status string")
	}
	if TaskInactive.Terminal() || !TaskEnded.Terminal() || !TaskDead.Terminal() {
		t.Error("Terminal misclassifies")
	}
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("engine without dependencies accepted")
	}
}

func TestRuntimeMonitors(t *testing.T) {
	rt := newRuntime(t, SimConfig{Monitor: true})
	register(t, rt, parallelSrc)
	var xs []ocr.Value
	for i := 0; i < 30; i++ {
		xs = append(xs, ocr.Num(float64(i)))
	}
	id := start(t, rt, "Par", map[string]ocr.Value{"xs": ocr.List(xs...)})
	rt.Cluster.SetExternalLoad("n1", 0.8)
	rt.RunUntil(sim.Time(5 * time.Minute))
	finished(t, rt, id)
	samples, reports := rt.MonitorStats()
	if samples == 0 || reports == 0 {
		t.Fatalf("monitor stats = %d/%d", samples, reports)
	}
	if reports >= samples {
		t.Fatalf("adaptive monitor reported everything: %d/%d", reports, samples)
	}
	loads := rt.ReportedLoads()
	if loads["n1"] < 0.5 {
		t.Fatalf("server view of n1 load = %v, want the 0.8 external load visible", loads["n1"])
	}
}
