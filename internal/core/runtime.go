package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bioopera/internal/ocr"
	"bioopera/internal/store"
)

// Snapshotter is implemented by stores that support compaction (the disk
// store); runtimes snapshot periodically when configured, bounding the
// write-ahead log a restart must replay.
type Snapshotter interface{ Snapshot() error }

// snapshotExtraSetter is implemented by stores whose snapshot image can
// carry extra manifest sections (the disk store). The snapshot cadence
// uses it to embed the engine's live proc-reference manifest.
type snapshotExtraSetter interface {
	SetSnapshotExtra(key string, value []byte)
}

// RuntimeBase is the runtime layer shared by the real-time drivers — the
// goroutine-pool LocalRuntime and the networked remote runtime. It owns
// the plumbing those drivers would otherwise duplicate: the engine handle,
// the Wait/generation broadcast that turns engine transitions into
// wake-ups, and the periodic snapshot cadence. Embed it and call Bind once
// the engine exists.
type RuntimeBase struct {
	engine *Engine

	// waitMu/cond/gen implement Wait: every interesting transition bumps
	// gen and broadcasts, and waiters sleep until gen moves. A counter —
	// instead of re-checking state under a big lock — keeps the wait
	// path off the engine's locks entirely.
	waitMu sync.Mutex
	cond   *sync.Cond
	gen    uint64

	snapMu   sync.Mutex
	snapStop chan struct{}
}

// Bind attaches the engine. Call it once, before the runtime is used.
func (rb *RuntimeBase) Bind(e *Engine) {
	rb.waitMu.Lock()
	rb.cond = sync.NewCond(&rb.waitMu)
	rb.engine = e
	rb.waitMu.Unlock()
}

// Engine returns the bound engine.
func (rb *RuntimeBase) Engine() *Engine {
	rb.waitMu.Lock()
	defer rb.waitMu.Unlock()
	return rb.engine
}

// Bump wakes every Wait caller to re-check its instance. Executors call it
// after delivering completions or changing capacity.
func (rb *RuntimeBase) Bump() {
	rb.waitMu.Lock()
	rb.gen++
	c := rb.cond
	rb.waitMu.Unlock()
	if c != nil {
		c.Broadcast()
	}
}

// Do runs f against the engine. The engine is internally synchronized, so
// f runs directly; concurrent Do calls are fine.
func (rb *RuntimeBase) Do(f func(e *Engine)) {
	f(rb.Engine())
}

// RegisterTemplateSource parses and registers OCR templates.
func (rb *RuntimeBase) RegisterTemplateSource(src string) error {
	return rb.Engine().RegisterTemplateSource(src)
}

// StartProcess launches an instance.
func (rb *RuntimeBase) StartProcess(template string, inputs map[string]ocr.Value, opts StartOptions) (string, error) {
	return rb.Engine().StartProcess(template, inputs, opts)
}

// InstanceStatus returns the current status and outputs of an instance.
func (rb *RuntimeBase) InstanceStatus(id string) (InstanceStatus, map[string]ocr.Value, error) {
	return rb.Engine().InstanceState(id)
}

// Wait blocks until the instance reaches Done or Failed, or the timeout
// elapses. It returns the instance.
//
// One timer is the whole timeout mechanism: when it fires it flips
// expired and bumps the generation, so the loop below wakes and observes
// the expiry on its next pass — no wall-clock deadline re-poll.
func (rb *RuntimeBase) Wait(id string, timeout time.Duration) (*Instance, error) {
	var expired atomic.Bool
	//bioopera:allow walltime Wait serves the real-time runtimes; their timeout is wall-clock by contract
	timer := time.AfterFunc(timeout, func() {
		expired.Store(true)
		rb.Bump()
	})
	defer timer.Stop()
	eng := rb.Engine()
	for {
		in, ok := eng.Instance(id)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrUnknownInstance, id)
		}
		rb.waitMu.Lock()
		g := rb.gen
		rb.waitMu.Unlock()
		// Check after capturing gen: a transition after this check bumps
		// gen, so the sleep below cannot miss it.
		if st := in.statusNow(); st == InstanceDone || st == InstanceFailed {
			// The status flips inside the final turn, before that turn's
			// archive checkpoint flushes; drain the gate so the caller
			// reads the archived state (and may close the store).
			eng.quiesceInstance(in)
			return in, nil
		}
		if expired.Load() {
			return in, fmt.Errorf("core: instance %s still %s after %v", id, in.statusNow(), timeout)
		}
		rb.waitMu.Lock()
		for rb.gen == g {
			rb.cond.Wait()
		}
		rb.waitMu.Unlock()
	}
}

// StartSnapshots begins compacting the store every period, so a long run's
// recovery log stays bounded. A store without snapshot support, or a zero
// period, makes it a no-op. Snapshot errors go to the engine's OnError.
func (rb *RuntimeBase) StartSnapshots(st store.Store, every time.Duration) {
	snap, ok := st.(Snapshotter)
	if !ok || every <= 0 {
		return
	}
	rb.snapMu.Lock()
	defer rb.snapMu.Unlock()
	if rb.snapStop != nil {
		return // already running
	}
	stop := make(chan struct{})
	rb.snapStop = stop
	eng := rb.Engine()
	go func() {
		//bioopera:allow walltime snapshot cadence paces real disk I/O; the sim runtime has its own virtual-clock snapshots
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rb.snapshotOnce(eng, snap, st)
			case <-stop:
				return
			}
		}
	}()
}

// snapshotOnce runs one compaction cycle: sweep dead interned process
// texts (their delete batches commit before the sweep returns, so this
// snapshot's image already excludes them), embed the live proc-reference
// manifest, then snapshot. Errors surface as EvPersistError events and
// through the engine's OnError hook — a background cadence has no caller
// to return them to.
func (rb *RuntimeBase) snapshotOnce(eng *Engine, snap Snapshotter, st store.Store) {
	if eng != nil {
		_, manifest := eng.SweepProcs()
		if setter, ok := st.(snapshotExtraSetter); ok {
			if data, err := json.Marshal(manifest); err == nil {
				setter.SetSnapshotExtra("procRefs", data)
			}
		}
	}
	if err := snap.Snapshot(); err != nil {
		if eng != nil {
			eng.emit(Event{Kind: EvPersistError, Detail: fmt.Sprintf("snapshot: %v", err)})
			if eng.opts.OnError != nil {
				eng.opts.OnError(fmt.Errorf("core: periodic snapshot: %w", err))
			}
		}
	}
}

// StopSnapshots halts the periodic snapshot loop started by
// StartSnapshots. Safe to call when none is running.
func (rb *RuntimeBase) StopSnapshots() {
	rb.snapMu.Lock()
	defer rb.snapMu.Unlock()
	if rb.snapStop != nil {
		close(rb.snapStop)
		rb.snapStop = nil
	}
}
