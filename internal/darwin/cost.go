package darwin

import "time"

// Queue is the paper's "queue file": the ordered list of dataset entry
// indices taking part in an all-vs-all. Discarding ill-behaving entries
// and restarting with a subset is done by editing the queue, never the
// dataset.
type Queue []int

// FullQueue returns the queue covering every entry of an N-entry dataset.
func FullQueue(n int) Queue {
	q := make(Queue, n)
	for i := range q {
		q[i] = i
	}
	return q
}

// Partition splits the queue into n contiguous task-execution units
// (TEUs, §3.3). n is clamped to [1, len(q)]. Chunk sizes differ by at
// most one.
func (q Queue) Partition(n int) []Queue {
	if n < 1 {
		n = 1
	}
	if n > len(q) {
		n = len(q)
	}
	parts := make([]Queue, 0, n)
	base, rem := len(q)/n, len(q)%n
	idx := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		parts = append(parts, q[idx:idx+size])
		idx += size
	}
	return parts
}

// PairsOwned reports the pairs a TEU computes: for each queue position p
// owned by the TEU, the pairs (q[p], q[k]) for all later positions k in
// the *full* queue. This is the paper's scheme ("align E_j against SP38",
// with "care taken to rule out redundant comparisons across different
// subprocesses"): each unordered pair is computed exactly once, by the
// TEU owning its earlier queue position.
//
// fn receives dataset entry indices (a, b); iteration stops early if fn
// returns false.
func PairsOwned(full Queue, ownedStart, ownedLen int, fn func(a, b int) bool) {
	for p := ownedStart; p < ownedStart+ownedLen && p < len(full); p++ {
		for k := p + 1; k < len(full); k++ {
			if !fn(full[p], full[k]) {
				return
			}
		}
	}
}

// CostModel converts alignment work into virtual CPU time for the cluster
// simulator. Defaults are calibrated so a 500-entry all-vs-all at mean
// length 360 costs ≈ 1000 CPU-seconds as a single TEU, matching the scale
// of the paper's Fig. 4 (ik-sun cluster).
type CostModel struct {
	// DarwinInit is the per-activity-invocation startup cost of the
	// external Darwin process ("a few seconds to schedule, distribute,
	// initiate, and merge"); it is what makes fine granularity wasteful.
	DarwinInit time.Duration
	// CellTime is the CPU time per dynamic-programming cell.
	CellTime time.Duration
	// RefineFactor multiplies pair cost for the PAM-refinement pass,
	// which re-aligns each *match* several times. It is charged only
	// on the fraction of pairs that match.
	RefineFactor float64
	// MatchFraction is the expected fraction of pairs that reach the
	// score threshold and therefore go through refinement.
	MatchFraction float64
	// PerPairOverhead is bookkeeping cost per pair independent of
	// length (I/O, match record handling).
	PerPairOverhead time.Duration
}

// DefaultCostModel returns the calibrated model used by the experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		DarwinInit:      2 * time.Second,
		CellTime:        55 * time.Nanosecond,
		RefineFactor:    7, // golden-section search runs ≈ 7 full alignments
		MatchFraction:   0.05,
		PerPairOverhead: 30 * time.Microsecond,
	}
}

// PairCost returns the virtual CPU time to align one pair of the given
// lengths, including the amortized refinement expectation.
func (c CostModel) PairCost(lenA, lenB int) time.Duration {
	cells := float64(lenA) * float64(lenB)
	base := time.Duration(cells * float64(c.CellTime))
	refine := time.Duration(float64(base) * c.RefineFactor * c.MatchFraction)
	return base + refine + c.PerPairOverhead
}

// TEUCost returns the virtual CPU time of a whole TEU: Darwin startup plus
// every owned pair. lengths maps entry index to sequence length.
func (c CostModel) TEUCost(full Queue, ownedStart, ownedLen int, lengths []int) time.Duration {
	total := c.DarwinInit
	PairsOwned(full, ownedStart, ownedLen, func(a, b int) bool {
		total += c.PairCost(lengths[a], lengths[b])
		return true
	})
	return total
}

// FixedPairCost is the fast-pass cost of one pair (no refinement).
func (c CostModel) FixedPairCost(lenA, lenB int) time.Duration {
	cells := float64(lenA) * float64(lenB)
	return time.Duration(cells*float64(c.CellTime)) + c.PerPairOverhead
}

// RefinePairCost is the cost of refining one *matching* pair: the
// golden-section search re-aligns it RefineFactor times.
func (c CostModel) RefinePairCost(lenA, lenB int) time.Duration {
	cells := float64(lenA) * float64(lenB)
	return time.Duration(cells * float64(c.CellTime) * c.RefineFactor)
}

// FixedTEUCost is the fast-pass cost of a whole TEU: Darwin startup plus
// every owned pair.
func (c CostModel) FixedTEUCost(full Queue, ownedStart, ownedLen int, lengths []int) time.Duration {
	total := c.DarwinInit
	PairsOwned(full, ownedStart, ownedLen, func(a, b int) bool {
		total += c.FixedPairCost(lengths[a], lengths[b])
		return true
	})
	return total
}

// RefineTEUCost is the refinement cost of a TEU, charging the expected
// matching fraction of its pairs.
func (c CostModel) RefineTEUCost(full Queue, ownedStart, ownedLen int, lengths []int) time.Duration {
	var pairSum time.Duration
	PairsOwned(full, ownedStart, ownedLen, func(a, b int) bool {
		pairSum += c.RefinePairCost(lengths[a], lengths[b])
		return true
	})
	return c.DarwinInit + time.Duration(float64(pairSum)*c.MatchFraction)
}

// MergeCost is the cost of merging n match records into one file.
func (c CostModel) MergeCost(n int64) time.Duration {
	return c.DarwinInit + time.Duration(n)*c.PerPairOverhead
}

// Lengths extracts the per-entry lengths of a dataset, the only thing the
// cost model needs.
func (d *Dataset) Lengths() []int {
	ls := make([]int, d.Len())
	for i, s := range d.Entries {
		ls[i] = s.Len()
	}
	return ls
}
