package darwin

import (
	"math"
	"sort"
)

// Alignment is the result of a local alignment of two sequences.
type Alignment struct {
	// Score is the Smith–Waterman score in tenth-bits.
	Score float64
	// PAM is the distance of the matrix that produced the score.
	PAM float64
	// AStart/AEnd and BStart/BEnd delimit the aligned regions
	// (half-open, in residue positions).
	AStart, AEnd int
	BStart, BEnd int
	// Length is the number of alignment columns (including gaps).
	Length int
	// Identity is the fraction of identical aligned residue pairs.
	Identity float64
	// Cells is the number of dynamic-programming cells evaluated —
	// the basis of the simulator's cost model.
	Cells int64
}

// Align computes the optimal Smith–Waterman local alignment of a and b
// under sm with affine gaps (Gotoh's algorithm), including a traceback to
// recover the aligned region, its length and identity.
func Align(a, b *Sequence, sm *ScoreMatrix) Alignment {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		return Alignment{PAM: sm.PAM}
	}
	// Matrices: H best-ending-here, E gap-in-a (horizontal),
	// F gap-in-b (vertical). Full matrices for traceback.
	H := make([][]float64, n+1)
	E := make([][]float64, n+1)
	F := make([][]float64, n+1)
	for i := 0; i <= n; i++ {
		H[i] = make([]float64, m+1)
		E[i] = make([]float64, m+1)
		F[i] = make([]float64, m+1)
	}
	negInf := math.Inf(-1)
	var best float64
	bi, bj := 0, 0
	for i := 1; i <= n; i++ {
		E[i][0] = negInf
		for j := 1; j <= m; j++ {
			if i == 1 {
				F[0][j] = negInf
			}
			E[i][j] = math.Max(E[i][j-1]+sm.GapExtend, H[i][j-1]+sm.GapOpen)
			F[i][j] = math.Max(F[i-1][j]+sm.GapExtend, H[i-1][j]+sm.GapOpen)
			h := H[i-1][j-1] + sm.S[a.Residues[i-1]][b.Residues[j-1]]
			h = math.Max(h, E[i][j])
			h = math.Max(h, F[i][j])
			if h < 0 {
				h = 0
			}
			H[i][j] = h
			if h > best {
				best, bi, bj = h, i, j
			}
		}
	}
	al := Alignment{Score: best, PAM: sm.PAM, Cells: int64(n) * int64(m)}
	if best == 0 {
		return al
	}
	// Three-state traceback from (bi,bj) until H hits 0 in match state.
	i, j := bi, bj
	var cols, ident int
	const (
		stM = iota // in H
		stE        // horizontal gap (consuming b)
		stF        // vertical gap (consuming a)
	)
	state := stM
	for i > 0 && j > 0 {
		switch state {
		case stM:
			h := H[i][j]
			if h == 0 {
				goto done
			}
			switch {
			case h == E[i][j]:
				state = stE
			case h == F[i][j]:
				state = stF
			default: // substitution
				if a.Residues[i-1] == b.Residues[j-1] {
					ident++
				}
				i--
				j--
				cols++
			}
		case stE: // gap in a: consume b[j-1]
			fromOpen := E[i][j] == H[i][j-1]+sm.GapOpen
			j--
			cols++
			if fromOpen {
				state = stM
			}
		case stF: // gap in b: consume a[i-1]
			fromOpen := F[i][j] == H[i-1][j]+sm.GapOpen
			i--
			cols++
			if fromOpen {
				state = stM
			}
		}
	}
done:
	al.AStart, al.AEnd = i, bi
	al.BStart, al.BEnd = j, bj
	al.Length = cols
	if cols > 0 {
		al.Identity = float64(ident) / float64(cols)
	}
	return al
}

// ScoreOnly computes just the optimal local-alignment score using linear
// memory — the fast path used by the fixed-PAM pass over millions of
// pairs.
func ScoreOnly(a, b *Sequence, sm *ScoreMatrix) (score float64, cells int64) {
	n, m := a.Len(), b.Len()
	if n == 0 || m == 0 {
		return 0, 0
	}
	negInf := math.Inf(-1)
	H := make([]float64, m+1) // H[i-1][*] rolling into H[i][*]
	F := make([]float64, m+1) // F[i][*] per column vertical gap state
	for j := range F {
		F[j] = negInf
	}
	var best float64
	for i := 1; i <= n; i++ {
		diag := H[0]
		e := negInf
		H[0] = 0
		ra := a.Residues[i-1]
		row := &sm.S[ra]
		for j := 1; j <= m; j++ {
			e = math.Max(e+sm.GapExtend, H[j-1]+sm.GapOpen)
			F[j] = math.Max(F[j]+sm.GapExtend, H[j]+sm.GapOpen)
			h := diag + row[b.Residues[j-1]]
			if e > h {
				h = e
			}
			if F[j] > h {
				h = F[j]
			}
			if h < 0 {
				h = 0
			}
			diag = H[j]
			H[j] = h
			if h > best {
				best = h
			}
		}
	}
	return best, int64(n) * int64(m)
}

// RefineResult is the outcome of the PAM-parameter refinement.
type RefineResult struct {
	Alignment
	// Evaluations counts how many full alignments the search ran.
	Evaluations int
}

// RefinePAM finds the PAM distance maximizing the alignment score of a and
// b (the paper's "alignment algorithm finding PAM distance maximizing
// similarity") by golden-section search over [lo, hi].
func RefinePAM(a, b *Sequence, lo, hi float64) RefineResult {
	const phi = 0.6180339887498949
	const tol = 2.0 // PAM distances are meaningful to ~2 units
	eval := func(d float64) Alignment {
		return Align(a, b, ScoreAt(d))
	}
	var res RefineResult
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := eval(x1), eval(x2)
	res.Evaluations = 2
	res.Cells = f1.Cells + f2.Cells
	for hi-lo > tol {
		if f1.Score < f2.Score {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = eval(x2)
		} else {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = eval(x1)
		}
		res.Evaluations++
		res.Cells += int64(a.Len()) * int64(b.Len())
	}
	if f1.Score >= f2.Score {
		cells := res.Cells
		res.Alignment = f1
		res.Cells = cells
	} else {
		cells := res.Cells
		res.Alignment = f2
		res.Cells = cells
	}
	return res
}

// Match records one significant pair found by the all-vs-all (§4: "the set
// of all sequence pairs whose similarity scores reach a user-defined
// threshold, along with some information about the characteristics of the
// pairs").
type Match struct {
	A, B     int     // entry indices, A < B
	Score    float64 // tenth-bits
	PAM      float64 // refined distance estimate
	Identity float64
	Length   int // alignment columns
}

// SortByEntry orders matches by (A, B) — the paper's "Merge by Entry #".
func SortByEntry(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].A != ms[j].A {
			return ms[i].A < ms[j].A
		}
		return ms[i].B < ms[j].B
	})
}

// SortByPAM orders matches by ascending PAM distance, breaking ties by
// descending score — the paper's "Merge by PAM dist.".
func SortByPAM(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].PAM != ms[j].PAM {
			return ms[i].PAM < ms[j].PAM
		}
		return ms[i].Score > ms[j].Score
	})
}

// MergeMatches concatenates per-partition match sets and deduplicates
// pairs, keeping the highest-scoring record for each pair.
func MergeMatches(sets ...[]Match) []Match {
	type key struct{ a, b int }
	bestOf := make(map[key]Match)
	for _, set := range sets {
		for _, m := range set {
			k := key{m.A, m.B}
			if prev, ok := bestOf[k]; !ok || m.Score > prev.Score {
				bestOf[k] = m
			}
		}
	}
	out := make([]Match, 0, len(bestOf))
	for _, m := range bestOf {
		out = append(out, m)
	}
	SortByEntry(out)
	return out
}
