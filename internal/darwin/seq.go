// Package darwin is the bioinformatics substrate of the reproduction.
//
// The paper runs all computational steps through Darwin (Gonnet, Hallett,
// Korostensky, Bernardin: "Darwin version 2.0, an interpreted computer
// language for the biosciences"), using a dynamic-programming local
// alignment with PAM-family scoring matrices and affine gap penalties
// (Smith & Waterman 1981; Gonnet, Cohen & Benner 1992). Darwin is not
// redistributable, so this package implements the same algorithms from
// scratch:
//
//   - protein sequences and a seeded synthetic Swiss-Prot-like generator,
//   - a PAM scoring-matrix family built by powering a 1-PAM mutation
//     matrix,
//   - Smith–Waterman local alignment with affine gaps (Gotoh's algorithm),
//   - two-phase all-vs-all matching: a fast fixed-PAM pass followed by a
//     refinement that searches for the PAM distance maximizing similarity,
//   - a calibrated cost model so the cluster simulator can charge virtual
//     CPU time for alignments without running them.
package darwin

import (
	"fmt"
	"math/rand"
	"strings"
)

// Alphabet is the 20 standard amino acids in alphabetical one-letter order.
const Alphabet = "ACDEFGHIKLMNPQRSTVWY"

// NumAA is the alphabet size.
const NumAA = len(Alphabet)

// aaIndex maps an amino-acid letter to its alphabet position, or -1.
var aaIndex [256]int8

func init() {
	for i := range aaIndex {
		aaIndex[i] = -1
	}
	for i := 0; i < NumAA; i++ {
		aaIndex[Alphabet[i]] = int8(i)
		aaIndex[Alphabet[i]+'a'-'A'] = int8(i)
	}
}

// Index returns the alphabet position of residue c, or -1 when c is not an
// amino-acid letter.
func Index(c byte) int { return int(aaIndex[c]) }

// Sequence is one protein entry of a dataset.
type Sequence struct {
	ID       int    // position in the dataset, 0-based (the paper's entry index)
	Name     string // accession-like label
	Residues []byte // indices into Alphabet (NOT letters)
}

// Len returns the sequence length.
func (s *Sequence) Len() int { return len(s.Residues) }

// String renders the residues as one-letter amino-acid codes.
func (s *Sequence) String() string {
	var sb strings.Builder
	sb.Grow(len(s.Residues))
	for _, r := range s.Residues {
		sb.WriteByte(Alphabet[r])
	}
	return sb.String()
}

// ParseSequence builds a Sequence from one-letter codes. Unknown letters
// are an error.
func ParseSequence(id int, name, letters string) (*Sequence, error) {
	res := make([]byte, 0, len(letters))
	for i := 0; i < len(letters); i++ {
		idx := Index(letters[i])
		if idx < 0 {
			return nil, fmt.Errorf("darwin: sequence %q has invalid residue %q at %d", name, letters[i], i)
		}
		res = append(res, byte(idx))
	}
	return &Sequence{ID: id, Name: name, Residues: res}, nil
}

// Dataset is an ordered collection of sequences — the stand-in for a
// Swiss-Prot release.
type Dataset struct {
	Name    string
	Entries []*Sequence
}

// Len returns the number of entries.
func (d *Dataset) Len() int { return len(d.Entries) }

// TotalResidues returns the summed length of all entries.
func (d *Dataset) TotalResidues() int {
	var n int
	for _, s := range d.Entries {
		n += s.Len()
	}
	return n
}

// PairCount returns the number of distinct unordered pairs — the paper's
// "approximately 3.2·10^9 individual pairwise alignments" for N = 80,000.
func (d *Dataset) PairCount() int64 {
	n := int64(d.Len())
	return n * (n - 1) / 2
}

// backgroundFreq holds approximate Swiss-Prot amino-acid frequencies
// (Robinson & Robinson style), indexed like Alphabet.
var backgroundFreq = normalizeFreqs([NumAA]float64{
	0.0826, // A
	0.0137, // C
	0.0546, // D
	0.0675, // E
	0.0386, // F
	0.0708, // G
	0.0227, // H
	0.0593, // I
	0.0582, // K
	0.0965, // L
	0.0241, // M
	0.0406, // N
	0.0472, // P
	0.0393, // Q
	0.0553, // R
	0.0660, // S
	0.0535, // T
	0.0687, // V
	0.0110, // W
	0.0292, // Y
})

// normalizeFreqs scales the table to sum to exactly 1: the PAM unit
// definition (1% expected change per position) depends on it.
func normalizeFreqs(f [NumAA]float64) [NumAA]float64 {
	var sum float64
	for _, x := range f {
		sum += x
	}
	for i := range f {
		f[i] /= sum
	}
	return f
}

// BackgroundFreq returns the background frequency of residue index i.
func BackgroundFreq(i int) float64 { return backgroundFreq[i] }

// GenOptions configure the synthetic dataset generator.
type GenOptions struct {
	// N is the number of entries.
	N int
	// MeanLen is the mean sequence length (Swiss-Prot's is ≈ 360;
	// tests use shorter). Lengths follow a clamped geometric-ish
	// distribution around the mean.
	MeanLen int
	// MinLen clamps the shortest sequence. Default 20.
	MinLen int
	// FamilyFraction is the fraction of entries generated as mutated
	// copies of earlier entries, so that the all-vs-all finds genuine
	// matches. Default 0.3.
	FamilyFraction float64
	// FamilyPAM is the mutation distance applied to family copies.
	// Default 60 (clearly related, clearly diverged).
	FamilyPAM float64
	// Seed makes generation deterministic.
	Seed int64
}

func (o *GenOptions) fill() {
	if o.MeanLen <= 0 {
		o.MeanLen = 360
	}
	if o.MinLen <= 0 {
		o.MinLen = 20
	}
	if o.FamilyFraction == 0 {
		o.FamilyFraction = 0.3
	}
	if o.FamilyPAM == 0 {
		o.FamilyPAM = 60
	}
}

// Generate produces a deterministic synthetic dataset. A fraction of the
// entries are evolutionary relatives of earlier entries (point mutations
// plus short indels at the configured PAM distance); the rest are drawn
// i.i.d. from the background frequencies.
func Generate(opts GenOptions) *Dataset {
	opts.fill()
	rng := rand.New(rand.NewSource(opts.Seed))
	d := &Dataset{Name: fmt.Sprintf("synthetic-%d", opts.N)}
	mutator := NewMutator(opts.FamilyPAM)
	for i := 0; i < opts.N; i++ {
		var seq *Sequence
		if i > 0 && rng.Float64() < opts.FamilyFraction {
			parent := d.Entries[rng.Intn(i)]
			seq = mutator.Mutate(parent, rng)
		} else {
			seq = randomSequence(rng, opts.MeanLen, opts.MinLen)
		}
		seq.ID = i
		seq.Name = fmt.Sprintf("SYN%05d", i)
		d.Entries = append(d.Entries, seq)
	}
	return d
}

// randomSequence draws a fresh sequence from the background distribution.
func randomSequence(rng *rand.Rand, meanLen, minLen int) *Sequence {
	// Length: exponential around the mean, clamped.
	ln := minLen + int(rng.ExpFloat64()*float64(meanLen-minLen))
	if ln > 5*meanLen {
		ln = 5 * meanLen
	}
	res := make([]byte, ln)
	for i := range res {
		res[i] = byte(sampleAA(rng))
	}
	return &Sequence{Residues: res}
}

// sampleAA draws a residue index from the background frequencies.
func sampleAA(rng *rand.Rand) int {
	x := rng.Float64()
	for i, f := range backgroundFreq {
		x -= f
		if x < 0 {
			return i
		}
	}
	return NumAA - 1
}

// Mutator applies evolution at a fixed PAM distance using the package's
// mutation matrix.
type Mutator struct {
	pam   float64
	probs *MutationMatrix // transition probabilities at distance pam
}

// NewMutator returns a mutator for the given PAM distance.
func NewMutator(pam float64) *Mutator {
	return &Mutator{pam: pam, probs: MutationAt(pam)}
}

// Mutate returns an evolved copy of s: every residue is substituted
// according to the PAM transition probabilities, and occasional short
// insertions/deletions are applied.
func (m *Mutator) Mutate(s *Sequence, rng *rand.Rand) *Sequence {
	out := make([]byte, 0, s.Len()+8)
	// Indel rate grows with distance but stays modest.
	indelRate := 0.0005 * m.pam
	for _, r := range s.Residues {
		if rng.Float64() < indelRate {
			if rng.Intn(2) == 0 {
				continue // deletion
			}
			// insertion of 1-3 background residues
			for k := rng.Intn(3) + 1; k > 0; k-- {
				out = append(out, byte(sampleAA(rng)))
			}
		}
		out = append(out, byte(m.probs.Sample(int(r), rng)))
	}
	if len(out) == 0 {
		out = append(out, byte(sampleAA(rng)))
	}
	return &Sequence{Residues: out}
}
