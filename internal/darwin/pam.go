package darwin

import (
	"math"
	"math/rand"
	"sync"
)

// MutationMatrix is a row-stochastic 20×20 matrix: entry [i][j] is the
// probability that residue i is observed as residue j after some amount of
// evolution. MutationAt(1) is the 1-PAM matrix (1% expected change).
type MutationMatrix struct {
	P [NumAA][NumAA]float64
	// cum caches row-wise cumulative sums for sampling.
	cum [NumAA][NumAA]float64
}

// aaClass groups amino acids by physico-chemical similarity; substitutions
// within a class are more likely. This synthetic affinity structure
// replaces the (non-redistributable) Dayhoff counts; the resulting matrix
// family has the same mathematical shape (row-stochastic, detailed-balance
// with the background frequencies, powered to larger distances).
var aaClass = map[byte]int{
	'A': 0, 'G': 0, 'S': 0, 'T': 0, 'P': 0, // small / polar-ish
	'C': 1,                         // cysteine, its own world
	'D': 2, 'E': 2, 'N': 2, 'Q': 2, // acidic + amides
	'K': 3, 'R': 3, 'H': 3, // basic
	'I': 4, 'L': 4, 'M': 4, 'V': 4, // aliphatic hydrophobic
	'F': 5, 'W': 5, 'Y': 5, // aromatic
}

// classAffinity is the relative substitution propensity between classes.
const (
	sameClassAffinity  = 6.0
	crossClassAffinity = 1.0
)

// pam1 is the generated 1-PAM matrix, built once.
var pam1 = buildPAM1()

func buildPAM1() *MutationMatrix {
	var m MutationMatrix
	// Raw exchangeability: symmetric affinity × target background
	// frequency (a simple reversible model).
	var raw [NumAA][NumAA]float64
	for i := 0; i < NumAA; i++ {
		ci := aaClass[Alphabet[i]]
		for j := 0; j < NumAA; j++ {
			if i == j {
				continue
			}
			cj := aaClass[Alphabet[j]]
			aff := crossClassAffinity
			if ci == cj {
				aff = sameClassAffinity
			}
			raw[i][j] = aff * backgroundFreq[j]
		}
	}
	// Scale each row so the expected change per position across the
	// background distribution is exactly 1% (the definition of 1 PAM).
	var totalChange float64
	var rowSum [NumAA]float64
	for i := 0; i < NumAA; i++ {
		for j := 0; j < NumAA; j++ {
			rowSum[i] += raw[i][j]
		}
		totalChange += backgroundFreq[i] * rowSum[i]
	}
	scale := 0.01 / totalChange
	for i := 0; i < NumAA; i++ {
		var off float64
		for j := 0; j < NumAA; j++ {
			if i != j {
				m.P[i][j] = raw[i][j] * scale
				off += m.P[i][j]
			}
		}
		m.P[i][i] = 1 - off
	}
	m.fillCum()
	return &m
}

func (m *MutationMatrix) fillCum() {
	for i := 0; i < NumAA; i++ {
		var c float64
		for j := 0; j < NumAA; j++ {
			c += m.P[i][j]
			m.cum[i][j] = c
		}
		m.cum[i][NumAA-1] = 1 // guard against rounding
	}
}

// mul returns a × b.
func mul(a, b *MutationMatrix) *MutationMatrix {
	var out MutationMatrix
	for i := 0; i < NumAA; i++ {
		for k := 0; k < NumAA; k++ {
			aik := a.P[i][k]
			if aik == 0 {
				continue
			}
			for j := 0; j < NumAA; j++ {
				out.P[i][j] += aik * b.P[k][j]
			}
		}
	}
	out.fillCum()
	return &out
}

// identityMatrix returns the 0-PAM matrix.
func identityMatrix() *MutationMatrix {
	var m MutationMatrix
	for i := 0; i < NumAA; i++ {
		m.P[i][i] = 1
	}
	m.fillCum()
	return &m
}

var (
	mutCacheMu sync.Mutex
	mutCache   = map[int]*MutationMatrix{}
)

// MutationAt returns the mutation matrix at PAM distance d (rounded to the
// nearest integer ≥ 0), computed by fast exponentiation of the 1-PAM
// matrix and cached.
func MutationAt(d float64) *MutationMatrix {
	n := int(math.Round(d))
	if n < 0 {
		n = 0
	}
	mutCacheMu.Lock()
	defer mutCacheMu.Unlock()
	if m, ok := mutCache[n]; ok {
		return m
	}
	result := identityMatrix()
	base := pam1
	for k := n; k > 0; k >>= 1 {
		if k&1 == 1 {
			result = mul(result, base)
		}
		if k > 1 {
			base = mul(base, base)
		}
	}
	mutCache[n] = result
	return result
}

// Sample draws the residue that i evolves into.
func (m *MutationMatrix) Sample(i int, rng *rand.Rand) int {
	x := rng.Float64()
	row := &m.cum[i]
	for j := 0; j < NumAA; j++ {
		if x < row[j] {
			return j
		}
	}
	return NumAA - 1
}

// ScoreMatrix is a log-odds substitution scoring matrix in tenth-bits
// (×10 log10 odds, the GCB convention), derived from a mutation matrix.
type ScoreMatrix struct {
	// PAM is the evolutionary distance the matrix models.
	PAM float64
	S   [NumAA][NumAA]float64
	// GapOpen and GapExtend are the affine penalties (negative).
	GapOpen   float64
	GapExtend float64
}

var (
	scoreCacheMu sync.Mutex
	scoreCache   = map[int]*ScoreMatrix{}
)

// ScoreAt returns the scoring matrix for PAM distance d (cached per
// rounded distance).
func ScoreAt(d float64) *ScoreMatrix {
	n := int(math.Round(d))
	if n < 1 {
		n = 1
	}
	scoreCacheMu.Lock()
	if sm, ok := scoreCache[n]; ok {
		scoreCacheMu.Unlock()
		return sm
	}
	scoreCacheMu.Unlock()

	m := MutationAt(float64(n))
	sm := &ScoreMatrix{PAM: float64(n)}
	for i := 0; i < NumAA; i++ {
		for j := 0; j < NumAA; j++ {
			odds := m.P[i][j] / backgroundFreq[j]
			if odds < 1e-10 {
				odds = 1e-10
			}
			sm.S[i][j] = 10 * math.Log10(odds)
		}
	}
	// Affine gap penalties in the GCB style: opening gets cheaper as
	// distance grows (gaps are more plausible between diverged
	// sequences), extension stays mild.
	sm.GapOpen = -(26 - 5*math.Log10(float64(n)))
	sm.GapExtend = -1.2

	scoreCacheMu.Lock()
	scoreCache[n] = sm
	scoreCacheMu.Unlock()
	return sm
}

// Score returns the substitution score for residue indices a and b.
func (sm *ScoreMatrix) Score(a, b byte) float64 { return sm.S[a][b] }

// ExpectedIdentity returns the probability that a residue pair at this
// matrix's distance is identical, averaged over the background — a sanity
// metric used by tests (≈ 99% at PAM 1, decaying toward ≈ 6% at large
// distances).
func ExpectedIdentity(d float64) float64 {
	m := MutationAt(d)
	var p float64
	for i := 0; i < NumAA; i++ {
		p += backgroundFreq[i] * m.P[i][i]
	}
	return p
}
