package darwin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestAlphabet(t *testing.T) {
	if NumAA != 20 {
		t.Fatalf("NumAA = %d", NumAA)
	}
	for i := 0; i < NumAA; i++ {
		if Index(Alphabet[i]) != i {
			t.Fatalf("Index(%c) = %d, want %d", Alphabet[i], Index(Alphabet[i]), i)
		}
	}
	if Index('a') != 0 || Index('y') != 19 {
		t.Fatal("lower-case index broken")
	}
	if Index('Z') != -1 || Index('*') != -1 {
		t.Fatal("invalid residues should map to -1")
	}
}

func TestParseSequence(t *testing.T) {
	s, err := ParseSequence(3, "P1", "ACDEfghi")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 8 || s.String() != "ACDEFGHI" {
		t.Fatalf("round trip = %q", s.String())
	}
	if s.ID != 3 || s.Name != "P1" {
		t.Fatalf("metadata = %+v", s)
	}
	if _, err := ParseSequence(0, "bad", "AC!DE"); err == nil {
		t.Fatal("invalid residue accepted")
	}
}

func TestBackgroundFreqSumsToOne(t *testing.T) {
	var sum float64
	for i := 0; i < NumAA; i++ {
		sum += BackgroundFreq(i)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("background frequencies sum to %v", sum)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenOptions{N: 50, MeanLen: 80, Seed: 7})
	b := Generate(GenOptions{N: 50, MeanLen: 80, Seed: 7})
	if a.Len() != 50 || b.Len() != 50 {
		t.Fatalf("lens = %d/%d", a.Len(), b.Len())
	}
	for i := range a.Entries {
		if a.Entries[i].String() != b.Entries[i].String() {
			t.Fatalf("generation not deterministic at entry %d", i)
		}
	}
	c := Generate(GenOptions{N: 50, MeanLen: 80, Seed: 8})
	same := 0
	for i := range a.Entries {
		if a.Entries[i].String() == c.Entries[i].String() {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds generated identical datasets")
	}
}

func TestGenerateProperties(t *testing.T) {
	d := Generate(GenOptions{N: 200, MeanLen: 60, MinLen: 10, Seed: 1})
	if d.PairCount() != 200*199/2 {
		t.Fatalf("PairCount = %d", d.PairCount())
	}
	for i, s := range d.Entries {
		if s.ID != i {
			t.Fatalf("entry %d has ID %d", i, s.ID)
		}
		if s.Len() < 1 {
			t.Fatalf("entry %d empty", i)
		}
		for _, r := range s.Residues {
			if int(r) >= NumAA {
				t.Fatalf("entry %d has residue %d out of range", i, r)
			}
		}
	}
	if d.TotalResidues() < 200*10 {
		t.Fatalf("TotalResidues = %d suspiciously small", d.TotalResidues())
	}
}

func TestMutationMatrixStochastic(t *testing.T) {
	for _, d := range []float64{1, 30, 120, 250} {
		m := MutationAt(d)
		for i := 0; i < NumAA; i++ {
			var sum float64
			for j := 0; j < NumAA; j++ {
				p := m.P[i][j]
				if p < -1e-12 || p > 1+1e-12 {
					t.Fatalf("PAM%v P[%d][%d] = %v out of [0,1]", d, i, j, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("PAM%v row %d sums to %v", d, i, sum)
			}
		}
	}
}

func TestPAM1Definition(t *testing.T) {
	// At distance 1, the expected identity across the background must
	// be 99% — the definition of the PAM unit.
	id := ExpectedIdentity(1)
	if math.Abs(id-0.99) > 1e-6 {
		t.Fatalf("ExpectedIdentity(1) = %v, want 0.99", id)
	}
}

func TestIdentityDecaysWithDistance(t *testing.T) {
	prev := 1.0
	for _, d := range []float64{1, 10, 40, 120, 250, 500} {
		id := ExpectedIdentity(d)
		if id >= prev {
			t.Fatalf("identity did not decay: %v at PAM %v (prev %v)", id, d, prev)
		}
		prev = id
	}
	// Very large distances approach the background self-identity
	// (sum f_i^2 ≈ 0.059).
	if id := ExpectedIdentity(2000); math.Abs(id-0.059) > 0.02 {
		t.Fatalf("asymptotic identity = %v, want ≈ 0.059", id)
	}
}

func TestMutationPower(t *testing.T) {
	// MutationAt(2) must equal MutationAt(1)^2.
	m1 := MutationAt(1)
	m2 := MutationAt(2)
	sq := mul(m1, m1)
	for i := 0; i < NumAA; i++ {
		for j := 0; j < NumAA; j++ {
			if math.Abs(m2.P[i][j]-sq.P[i][j]) > 1e-12 {
				t.Fatalf("PAM2 != PAM1^2 at [%d][%d]", i, j)
			}
		}
	}
}

func TestScoreMatrixDiagonalPositive(t *testing.T) {
	sm := ScoreAt(120)
	for i := 0; i < NumAA; i++ {
		if sm.S[i][i] <= 0 {
			t.Fatalf("self score of %c at PAM120 = %v, want > 0", Alphabet[i], sm.S[i][i])
		}
	}
	if sm.GapOpen >= 0 || sm.GapExtend >= 0 {
		t.Fatal("gap penalties must be negative")
	}
}

func TestScoreAtCachesAndClamps(t *testing.T) {
	a := ScoreAt(120)
	b := ScoreAt(120.2)
	if a != b {
		t.Fatal("ScoreAt not cached per rounded distance")
	}
	if ScoreAt(0).PAM != 1 || ScoreAt(-5).PAM != 1 {
		t.Fatal("ScoreAt should clamp to PAM 1")
	}
}

func TestAlignIdenticalSequences(t *testing.T) {
	s, _ := ParseSequence(0, "s", "MKVLITGGAGFIGSHLVDRLMAEGHEVIC")
	al := Align(s, s, ScoreAt(40))
	if al.Score <= 0 {
		t.Fatalf("self alignment score = %v", al.Score)
	}
	if al.Identity != 1 {
		t.Fatalf("self alignment identity = %v, want 1", al.Identity)
	}
	if al.Length != s.Len() {
		t.Fatalf("self alignment length = %d, want %d", al.Length, s.Len())
	}
	if al.AStart != 0 || al.AEnd != s.Len() {
		t.Fatalf("self alignment span = [%d,%d)", al.AStart, al.AEnd)
	}
}

func TestAlignFindsEmbeddedMotif(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	motif := "WWYYFFHHKKRRDDEE" // distinctive
	pre := randomSequence(rng, 40, 30)
	post := randomSequence(rng, 40, 30)
	a, _ := ParseSequence(0, "a", pre.String()+motif+post.String())
	b, _ := ParseSequence(1, "b", motif)
	al := Align(a, b, ScoreAt(40))
	if al.Identity < 0.9 {
		t.Fatalf("motif identity = %v", al.Identity)
	}
	if al.BEnd-al.BStart < len(motif)-2 {
		t.Fatalf("motif span = [%d,%d)", al.BStart, al.BEnd)
	}
	if al.AStart < pre.Len()-2 || al.AEnd > pre.Len()+len(motif)+2 {
		t.Fatalf("located motif at [%d,%d), expected near [%d,%d)", al.AStart, al.AEnd, pre.Len(), pre.Len()+len(motif))
	}
}

func TestAlignEmpty(t *testing.T) {
	e := &Sequence{}
	s, _ := ParseSequence(0, "s", "ACDE")
	al := Align(e, s, ScoreAt(100))
	if al.Score != 0 || al.Length != 0 {
		t.Fatalf("empty alignment = %+v", al)
	}
}

func TestScoreOnlyMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mut := NewMutator(50)
	sm := ScoreAt(80)
	for trial := 0; trial < 25; trial++ {
		a := randomSequence(rng, 60, 20)
		var b *Sequence
		if trial%2 == 0 {
			b = mut.Mutate(a, rng) // related pair
		} else {
			b = randomSequence(rng, 60, 20)
		}
		full := Align(a, b, sm)
		fast, cells := ScoreOnly(a, b, sm)
		if math.Abs(full.Score-fast) > 1e-6 {
			t.Fatalf("trial %d: Align=%v ScoreOnly=%v", trial, full.Score, fast)
		}
		if cells != int64(a.Len())*int64(b.Len()) {
			t.Fatalf("cells = %d", cells)
		}
	}
}

func TestRelatedScoresHigherThanUnrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mut := NewMutator(60)
	sm := ScoreAt(80)
	wins := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		a := randomSequence(rng, 120, 80)
		rel := mut.Mutate(a, rng)
		unrel := randomSequence(rng, 120, 80)
		sRel, _ := ScoreOnly(a, rel, sm)
		sUn, _ := ScoreOnly(a, unrel, sm)
		if sRel > sUn {
			wins++
		}
	}
	if wins < trials-1 {
		t.Fatalf("related pair outscored unrelated only %d/%d times", wins, trials)
	}
}

func TestRefinePAMRecoversDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, truePAM := range []float64{30, 90, 160} {
		mut := NewMutator(truePAM)
		a := randomSequence(rng, 300, 250)
		b := mut.Mutate(a, rng)
		res := RefinePAM(a, b, 5, 250)
		if res.Evaluations < 3 {
			t.Fatalf("suspiciously few evaluations: %d", res.Evaluations)
		}
		// Golden-section on a noisy objective: accept a generous band.
		if math.Abs(res.PAM-truePAM) > truePAM*0.75+25 {
			t.Errorf("true PAM %v estimated as %v", truePAM, res.PAM)
		}
	}
}

func TestQueuePartition(t *testing.T) {
	q := FullQueue(10)
	parts := q.Partition(3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10 {
		t.Fatalf("partition covers %d entries", total)
	}
	if len(parts[0])-len(parts[2]) > 1 {
		t.Fatalf("unbalanced partition: %v", parts)
	}
	// Clamping.
	if got := len(q.Partition(0)); got != 1 {
		t.Fatalf("Partition(0) = %d parts", got)
	}
	if got := len(q.Partition(99)); got != 10 {
		t.Fatalf("Partition(99) = %d parts", got)
	}
}

func TestPairsOwnedCoversAllPairsOnce(t *testing.T) {
	const n = 17
	q := FullQueue(n)
	seen := make(map[[2]int]int)
	parts := q.Partition(4)
	start := 0
	for _, p := range parts {
		PairsOwned(q, start, len(p), func(a, b int) bool {
			if a >= b {
				t.Fatalf("pair (%d,%d) not ordered", a, b)
			}
			seen[[2]int{a, b}]++
			return true
		})
		start += len(p)
	}
	if len(seen) != n*(n-1)/2 {
		t.Fatalf("covered %d pairs, want %d", len(seen), n*(n-1)/2)
	}
	for pair, count := range seen {
		if count != 1 {
			t.Fatalf("pair %v computed %d times", pair, count)
		}
	}
}

func TestPairsOwnedEarlyStop(t *testing.T) {
	q := FullQueue(10)
	calls := 0
	PairsOwned(q, 0, 10, func(a, b int) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early stop after %d calls", calls)
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultCostModel()
	short := c.PairCost(50, 50)
	long := c.PairCost(500, 500)
	if long <= short {
		t.Fatal("longer pairs must cost more")
	}
	// TEU cost: init dominates tiny TEUs.
	lengths := make([]int, 10)
	for i := range lengths {
		lengths[i] = 100
	}
	q := FullQueue(10)
	one := c.TEUCost(q, 0, 10, lengths)
	if one <= c.DarwinInit {
		t.Fatal("TEU cost must exceed init overhead")
	}
	// Splitting into 10 TEUs pays init 10 times; total CPU grows.
	var split time.Duration
	start := 0
	for _, p := range q.Partition(10) {
		split += c.TEUCost(q, start, len(p), lengths)
		start += len(p)
	}
	if split <= one+8*c.DarwinInit {
		t.Fatalf("10-way split cost %v vs single %v: init overhead missing", split, one)
	}
}

func TestFixedPAMPassFindsFamilies(t *testing.T) {
	d := Generate(GenOptions{N: 30, MeanLen: 80, Seed: 21, FamilyFraction: 0.5, FamilyPAM: 40})
	full := FullQueue(d.Len())
	matches := FixedPAMPass(d, full, 0, len(full), FixedPAMOptions{})
	if len(matches) == 0 {
		t.Fatal("no matches found in a dataset full of families")
	}
	for _, m := range matches {
		if m.A >= m.B {
			t.Fatalf("match %+v not ordered", m)
		}
		if m.Score < 80 {
			t.Fatalf("match below threshold: %+v", m)
		}
	}
}

func TestRefinePassFiltersAndAnnotates(t *testing.T) {
	d := Generate(GenOptions{N: 20, MeanLen: 70, Seed: 4, FamilyFraction: 0.5, FamilyPAM: 30})
	full := FullQueue(d.Len())
	q := FixedPAMPass(d, full, 0, len(full), FixedPAMOptions{})
	if len(q) == 0 {
		t.Skip("no first-pass matches with this seed")
	}
	r := RefinePass(d, q, RefineOptions{})
	if len(r) > len(q) {
		t.Fatal("refinement created matches")
	}
	for _, m := range r {
		if m.PAM < 5 || m.PAM > 250 {
			t.Fatalf("refined PAM out of range: %+v", m)
		}
		if m.Length == 0 {
			t.Fatalf("refined match has no alignment length: %+v", m)
		}
	}
}

func TestPartitionedEqualsSerial(t *testing.T) {
	// The invariant behind the whole granularity experiment: the union
	// of per-TEU results must be independent of the partitioning.
	d := Generate(GenOptions{N: 24, MeanLen: 60, Seed: 13, FamilyFraction: 0.5, FamilyPAM: 35})
	serial := AllVsAllSerial(d, FixedPAMOptions{}, RefineOptions{})

	full := FullQueue(d.Len())
	for _, n := range []int{2, 5, 24} {
		var sets [][]Match
		start := 0
		for _, p := range full.Partition(n) {
			q := FixedPAMPass(d, full, start, len(p), FixedPAMOptions{})
			sets = append(sets, RefinePass(d, q, RefineOptions{}))
			start += len(p)
		}
		merged := MergeMatches(sets...)
		if len(merged) != len(serial) {
			t.Fatalf("n=%d: %d matches, serial found %d", n, len(merged), len(serial))
		}
		for i := range merged {
			if merged[i].A != serial[i].A || merged[i].B != serial[i].B {
				t.Fatalf("n=%d: pair mismatch at %d: %+v vs %+v", n, i, merged[i], serial[i])
			}
			if math.Abs(merged[i].Score-serial[i].Score) > 1e-9 {
				t.Fatalf("n=%d: score mismatch at %d", n, i)
			}
		}
	}
}

func TestSortOrders(t *testing.T) {
	ms := []Match{
		{A: 2, B: 3, Score: 100, PAM: 90},
		{A: 0, B: 5, Score: 200, PAM: 30},
		{A: 0, B: 1, Score: 150, PAM: 30},
		{A: 1, B: 2, Score: 120, PAM: 200},
	}
	SortByEntry(ms)
	if ms[0].B != 1 || ms[1].B != 5 || ms[2].A != 1 || ms[3].A != 2 {
		t.Fatalf("SortByEntry = %+v", ms)
	}
	SortByPAM(ms)
	if ms[0].PAM != 30 || ms[0].Score != 200 { // tie on PAM broken by score desc
		t.Fatalf("SortByPAM = %+v", ms)
	}
	if ms[3].PAM != 200 {
		t.Fatalf("SortByPAM tail = %+v", ms)
	}
}

func TestMergeMatchesDedup(t *testing.T) {
	a := []Match{{A: 0, B: 1, Score: 100}}
	b := []Match{{A: 0, B: 1, Score: 150}, {A: 1, B: 2, Score: 90}}
	m := MergeMatches(a, b)
	if len(m) != 2 {
		t.Fatalf("merged = %+v", m)
	}
	if m[0].Score != 150 {
		t.Fatal("dedup kept the lower-scoring record")
	}
}

// Property: alignment score is symmetric and non-negative.
func TestAlignSymmetryProperty(t *testing.T) {
	sm := ScoreAt(100)
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := randomSequence(ra, 40, 10)
		b := randomSequence(rb, 40, 10)
		sab, _ := ScoreOnly(a, b, sm)
		sba, _ := ScoreOnly(b, a, sm)
		return sab >= 0 && math.Abs(sab-sba) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: self-alignment dominates: score(a,a) ≥ score(a,b) for random b.
func TestSelfAlignmentDominatesProperty(t *testing.T) {
	sm := ScoreAt(60)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomSequence(rng, 50, 20)
		b := randomSequence(rng, 50, 20)
		saa, _ := ScoreOnly(a, a, sm)
		sab, _ := ScoreOnly(a, b, sm)
		return saa >= sab
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCostTableMatchesCostModel(t *testing.T) {
	// The closed-form cost table must agree with the O(pairs) model on
	// every partition of several queues (within per-pair rounding).
	c := DefaultCostModel()
	ds := Generate(GenOptions{N: 60, MeanLen: 120, Seed: 19})
	lengths := ds.Lengths()
	for _, qn := range []int{1, 7, 60} {
		q := make(Queue, qn)
		for i := range q {
			q[i] = i
		}
		table := NewCostTable(c, q, lengths)
		for _, n := range []int{1, 3, qn} {
			start := 0
			for _, p := range q.Partition(n) {
				slow := c.FixedTEUCost(q, start, len(p), lengths)
				fast := table.FixedTEUCost(start, len(p))
				if diff := slow - fast; diff < -time.Microsecond || diff > time.Microsecond {
					t.Fatalf("qn=%d n=%d start=%d: fixed %v vs %v", qn, n, start, slow, fast)
				}
				slowR := c.RefineTEUCost(q, start, len(p), lengths)
				fastR := table.RefineTEUCost(start, len(p))
				if diff := slowR - fastR; diff < -time.Microsecond || diff > time.Microsecond {
					t.Fatalf("qn=%d n=%d start=%d: refine %v vs %v", qn, n, start, slowR, fastR)
				}
				// Pair counts agree exactly.
				var pairs int64
				PairsOwned(q, start, len(p), func(a, b int) bool { pairs++; return true })
				if got := table.Pairs(start, len(p)); got != pairs {
					t.Fatalf("pairs %d vs %d", got, pairs)
				}
				start += len(p)
			}
		}
	}
}

func TestCostTableTotals(t *testing.T) {
	c := DefaultCostModel()
	ds := Generate(GenOptions{N: 25, MeanLen: 80, Seed: 20})
	q := FullQueue(ds.Len())
	table := NewCostTable(c, q, ds.Lengths())
	if table.TotalFixedCPU() != table.FixedTEUCost(0, ds.Len()) {
		t.Fatal("TotalFixedCPU mismatch")
	}
	// Out-of-range clamps.
	if table.Pairs(20, 100) != table.Pairs(20, 5) {
		t.Fatal("Pairs does not clamp")
	}
}
