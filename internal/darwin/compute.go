package darwin

// This file holds the real (non-simulated) compute kernels behind the
// all-vs-all activities. The engine's local executor calls these; on the
// simulated cluster only their cost model is charged.

// FixedPAMOptions configure the fast first pass.
type FixedPAMOptions struct {
	// PAM is the fixed distance of the fast pass (the paper uses one
	// fixed matrix before refining). Default 120.
	PAM float64
	// Threshold is the minimum score (tenth-bits) for a pair to count
	// as a match. Default 80.
	Threshold float64
}

func (o *FixedPAMOptions) fill() {
	if o.PAM == 0 {
		o.PAM = 120
	}
	if o.Threshold == 0 {
		o.Threshold = 80
	}
}

// FixedPAMPass computes the fast fixed-PAM alignment of every pair owned
// by queue positions [ownedStart, ownedStart+ownedLen) and returns the
// pairs whose score reaches the threshold (the set Q_i of §4).
func FixedPAMPass(d *Dataset, full Queue, ownedStart, ownedLen int, opts FixedPAMOptions) []Match {
	opts.fill()
	sm := ScoreAt(opts.PAM)
	var out []Match
	PairsOwned(full, ownedStart, ownedLen, func(a, b int) bool {
		sa, sb := d.Entries[a], d.Entries[b]
		score, _ := ScoreOnly(sa, sb, sm)
		if score >= opts.Threshold {
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			out = append(out, Match{A: lo, B: hi, Score: score, PAM: opts.PAM})
		}
		return true
	})
	return out
}

// RefineOptions configure the PAM-parameter refinement pass.
type RefineOptions struct {
	// LoPAM and HiPAM bound the distance search. Defaults 5 and 250.
	LoPAM, HiPAM float64
	// Threshold drops refined matches whose best score falls below it.
	// Default 80.
	Threshold float64
}

func (o *RefineOptions) fill() {
	if o.LoPAM == 0 {
		o.LoPAM = 5
	}
	if o.HiPAM == 0 {
		o.HiPAM = 250
	}
	if o.Threshold == 0 {
		o.Threshold = 80
	}
}

// RefinePass re-aligns each match searching for the PAM distance that
// maximizes similarity (the set R_i of §4).
func RefinePass(d *Dataset, matches []Match, opts RefineOptions) []Match {
	opts.fill()
	out := make([]Match, 0, len(matches))
	for _, m := range matches {
		res := RefinePAM(d.Entries[m.A], d.Entries[m.B], opts.LoPAM, opts.HiPAM)
		if res.Score < opts.Threshold {
			continue
		}
		out = append(out, Match{
			A: m.A, B: m.B,
			Score:    res.Score,
			PAM:      res.PAM,
			Identity: res.Identity,
			Length:   res.Length,
		})
	}
	return out
}

// AllVsAllSerial runs the whole two-phase all-vs-all in-process, without
// the engine — the ground truth the integration tests compare engine runs
// against.
func AllVsAllSerial(d *Dataset, fixed FixedPAMOptions, refine RefineOptions) []Match {
	full := FullQueue(d.Len())
	q := FixedPAMPass(d, full, 0, len(full), fixed)
	return RefinePass(d, q, refine)
}
