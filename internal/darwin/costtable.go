package darwin

import "time"

// CostTable precomputes suffix sums over a queue so TEU costs at
// Swiss-Prot scale (3.2·10⁹ pairs for N = 80,000) are computed in O(TEU
// entries) instead of O(pairs). It answers the same questions as
// CostModel.FixedTEUCost / RefineTEUCost, exactly.
type CostTable struct {
	Model CostModel
	n     int
	// sufLen[p] = Σ_{k ≥ p} lengths[queue[k]]
	sufLen []float64
}

// NewCostTable builds the table for a queue over the given entry lengths.
func NewCostTable(model CostModel, queue Queue, lengths []int) *CostTable {
	n := len(queue)
	t := &CostTable{Model: model, n: n, sufLen: make([]float64, n+1)}
	for p := n - 1; p >= 0; p-- {
		t.sufLen[p] = t.sufLen[p+1] + float64(lengths[queue[p]])
	}
	return t
}

// lenAt recovers the length of the entry at queue position p.
func (t *CostTable) lenAt(p int) float64 { return t.sufLen[p] - t.sufLen[p+1] }

// Pairs returns the number of pairs owned by positions [start, start+count).
func (t *CostTable) Pairs(start, count int) int64 {
	var pairs int64
	end := start + count
	if end > t.n {
		end = t.n
	}
	for p := start; p < end; p++ {
		pairs += int64(t.n - 1 - p)
	}
	return pairs
}

// cells returns Σ over owned pairs of len_a × len_b.
func (t *CostTable) cells(start, count int) float64 {
	var cells float64
	end := start + count
	if end > t.n {
		end = t.n
	}
	for p := start; p < end; p++ {
		cells += t.lenAt(p) * t.sufLen[p+1]
	}
	return cells
}

// FixedTEUCost matches CostModel.FixedTEUCost.
func (t *CostTable) FixedTEUCost(start, count int) time.Duration {
	cells := t.cells(start, count)
	pairs := t.Pairs(start, count)
	return t.Model.DarwinInit +
		time.Duration(cells*float64(t.Model.CellTime)) +
		time.Duration(pairs)*t.Model.PerPairOverhead
}

// RefineTEUCost matches CostModel.RefineTEUCost.
func (t *CostTable) RefineTEUCost(start, count int) time.Duration {
	cells := t.cells(start, count)
	pairSum := cells * float64(t.Model.CellTime) * t.Model.RefineFactor
	return t.Model.DarwinInit + time.Duration(pairSum*t.Model.MatchFraction)
}

// TotalFixedCPU returns the single-TEU fixed-pass cost of the whole queue.
func (t *CostTable) TotalFixedCPU() time.Duration { return t.FixedTEUCost(0, t.n) }
