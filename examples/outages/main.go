// Dependable computing demonstrated: an all-vs-all on the simulated
// ik-linux cluster survives a what-if-analyzed maintenance outage, a
// full-cluster failure, and a BioOpera server crash — and still produces
// exactly the same matches as an undisturbed run.
//
//	go run ./examples/outages
package main

import (
	"fmt"
	"log"
	"time"

	"bioopera"
	"bioopera/internal/darwin"
	"bioopera/internal/sim"
)

func main() {
	ds := bioopera.GenerateDataset(bioopera.GenOptions{
		N: 150, MeanLen: 150, Seed: 9, FamilyFraction: 0.5,
	})

	// Reference run: no disturbances.
	reference := run(ds, false)
	fmt.Printf("reference run: %d matches, WALL %v, %d failures\n\n",
		len(reference.matches), reference.wall.Round(time.Second), reference.failures)

	// Disturbed run: outage + crash + server restart.
	disturbed := run(ds, true)
	fmt.Printf("\ndisturbed run: %d matches, WALL %v, %d failures survived\n",
		len(disturbed.matches), disturbed.wall.Round(time.Second), disturbed.failures)

	// The dependability claim: identical results.
	if len(reference.matches) != len(disturbed.matches) {
		log.Fatalf("DIVERGED: %d vs %d matches", len(reference.matches), len(disturbed.matches))
	}
	for i := range reference.matches {
		a, b := reference.matches[i], disturbed.matches[i]
		if a.A != b.A || a.B != b.B || a.Score != b.Score {
			log.Fatalf("DIVERGED at match %d: %+v vs %+v", i, a, b)
		}
	}
	fmt.Println("results are identical — no work was lost, no result corrupted")
}

type outcome struct {
	matches  []bioopera.Match
	wall     time.Duration
	failures int
}

func run(ds *bioopera.Dataset, disturb bool) outcome {
	// Alignments really run (fast); the *virtual* cost model is inflated
	// so the simulated timeline is long enough for the disturbances.
	cost := darwin.DefaultCostModel()
	cost.CellTime = 10 * time.Microsecond
	cfg := &bioopera.AllVsAllConfig{Dataset: ds, Cost: cost}
	lib := bioopera.NewLibrary()
	must(bioopera.RegisterAllVsAll(lib, cfg))
	rt, err := bioopera.NewSimRuntime(bioopera.SimConfig{
		Seed: 1, Spec: bioopera.IkLinux(), Library: lib,
	})
	must(err)
	must(rt.Engine.RegisterTemplateSource(bioopera.AllVsAllSource))
	id, err := rt.Engine.StartProcess(bioopera.AllVsAllTemplate, cfg.Inputs(12), bioopera.StartOptions{})
	must(err)

	if disturb {
		at := func(d time.Duration, f func(now sim.Time)) { rt.Sim.At(sim.Time(d), f) }

		// 1. Planned maintenance: ask the awareness model first.
		at(2*time.Second, func(sim.Time) {
			impact := rt.Engine.WhatIf([]string{"iklinux-00", "iklinux-01"})
			fmt.Printf("what-if (take iklinux-00/01 offline): %d running jobs to reschedule, %d CPUs remain, %d stranded\n",
				len(impact.Jobs), impact.RemainingCPUs, len(impact.Stranded))
			rt.Cluster.CrashNode("iklinux-00")
			rt.Cluster.CrashNode("iklinux-01")
			fmt.Println("event: maintenance outage on 2 nodes")
		})
		at(20*time.Second, func(sim.Time) {
			rt.Cluster.RestoreNode("iklinux-00")
			rt.Cluster.RestoreNode("iklinux-01")
			fmt.Println("event: maintenance done, nodes restored")
		})

		// 2. Whole-cluster failure.
		at(40*time.Second, func(sim.Time) {
			for _, v := range rt.Cluster.Nodes() {
				rt.Cluster.CrashNode(v.Name)
			}
			fmt.Println("event: complete cluster failure")
		})
		at(70*time.Second, func(sim.Time) {
			for _, v := range rt.Cluster.Nodes() {
				rt.Cluster.RestoreNode(v.Name)
			}
			fmt.Println("event: cluster recovered")
		})

		// 3. BioOpera server crash: volatile state is lost; the
		// persistent store brings everything back.
		at(90*time.Second, func(sim.Time) {
			rt.Engine.Crash()
			n, err := rt.Engine.Recover()
			must(err)
			fmt.Printf("event: BioOpera server crash — recovered %d instance(s) from the store\n", n)
		})
	}

	rt.Run()
	in, ok := rt.Engine.Instance(id)
	if !ok {
		log.Fatalf("instance %s lost", id)
	}
	if in.Status != bioopera.InstanceDone {
		log.Fatalf("process %s: %s", in.Status, in.FailureReason)
	}
	ms, err := bioopera.DecodeMatches(in.Outputs["master_file"])
	must(err)
	return outcome{matches: ms, wall: in.WALL(rt.Sim.Now()), failures: in.Failures}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
