// The paper's flagship workload (§4, Fig. 3) run for real: an all-vs-all
// self-comparison of a synthetic protein dataset, executed as a BioOpera
// process on the local worker pool — fixed-PAM fast pass, PAM-distance
// refinement, merge by entry and by PAM distance — followed by a lineage
// query showing what would have to be recomputed if the refinement
// algorithm changed.
//
//	go run ./examples/allvsall
package main

import (
	"fmt"
	"log"
	"time"

	"bioopera"
)

func main() {
	// A synthetic stand-in for a Swiss-Prot slice: half the entries are
	// evolutionary relatives, so the comparison finds real families.
	ds := bioopera.GenerateDataset(bioopera.GenOptions{
		N: 60, MeanLen: 120, Seed: 42, FamilyFraction: 0.5, FamilyPAM: 50,
	})
	fmt.Printf("dataset: %d sequences, %d residues, %d pairs to align\n",
		ds.Len(), ds.TotalResidues(), ds.PairCount())

	cfg := &bioopera.AllVsAllConfig{Dataset: ds}
	lib := bioopera.NewLibrary()
	must(bioopera.RegisterAllVsAll(lib, cfg))

	rt, err := bioopera.NewLocalRuntime(bioopera.LocalConfig{Workers: 4, Library: lib})
	must(err)
	defer rt.Close()
	must(rt.RegisterTemplateSource(bioopera.AllVsAllSource))

	start := time.Now()
	id, err := rt.StartProcess(bioopera.AllVsAllTemplate, cfg.Inputs(8), bioopera.StartOptions{})
	must(err)
	in, err := rt.Wait(id, 5*time.Minute)
	must(err)
	if in.Status != bioopera.InstanceDone {
		log.Fatalf("process %s: %s", in.Status, in.FailureReason)
	}

	matches, err := bioopera.DecodeMatches(in.Outputs["master_file"])
	must(err)
	fmt.Printf("completed in %v: %d activities, %d matches\n\n",
		time.Since(start).Round(time.Millisecond), in.Activities, len(matches))

	fmt.Printf("%8s %8s %10s %6s %9s\n", "entry A", "entry B", "score", "PAM", "identity")
	for i, m := range matches {
		if i == 10 {
			fmt.Printf("     ... and %d more\n", len(matches)-10)
			break
		}
		fmt.Printf("%8d %8d %10.1f %6.0f %8.0f%%\n", m.A, m.B, m.Score, m.PAM, 100*m.Identity)
	}

	// Lineage: §6 — "lineage tracking is done automatically ... the
	// system [can] recompute processes as data inputs or algorithms
	// change". Ask what a new refinement algorithm would invalidate.
	rt.Do(func(e *bioopera.Engine) {
		lg, err := e.Lineage(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nif the refinement algorithm (avsa.refine) changes, recompute %d tasks:\n",
			len(lg.AffectedByProgram("avsa.refine")))
		for i, t := range lg.AffectedByProgram("avsa.refine") {
			if i == 6 {
				fmt.Println("  ...")
				break
			}
			fmt.Printf("  %s\n", t)
		}
		fmt.Printf("producer of master_file: %s\n", lg.Producer("master_file"))
	})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
