// Quickstart: define a small process in OCR, register the programs its
// activities call, and run it for real on the local worker pool.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"bioopera"
)

// The process: greet every guest in parallel, then assemble a banner.
const src = `
PROCESS Party "Greet every guest, then hang the banner" {
  INPUT guests;
  OUTPUT banner;

  BLOCK GreetAll PARALLEL OVER guests AS guest {
    MAP results -> greetings;
    OUTPUT line;
    ACTIVITY Greet {
      CALL party.greet(name = guest);
      OUT line;
      MAP line -> line;
      RETRY 1;
    }
  }

  ACTIVITY Banner {
    CALL party.banner(lines = greetings);
    OUT banner;
    MAP banner -> banner;
  }

  GreetAll -> Banner;
}
`

func main() {
	// 1. The activity library: external bindings are plain Go functions.
	lib := bioopera.NewLibrary()
	must(lib.Register(bioopera.Program{
		Name: "party.greet",
		Run: func(ctx bioopera.ProgramCtx, args map[string]bioopera.Value) (map[string]bioopera.Value, error) {
			line := fmt.Sprintf("hello, %s! (greeted on %s)", args["name"].AsStr(), ctx.Node)
			return map[string]bioopera.Value{"line": bioopera.Str(line)}, nil
		},
	}))
	must(lib.Register(bioopera.Program{
		Name: "party.banner",
		Run: func(_ bioopera.ProgramCtx, args map[string]bioopera.Value) (map[string]bioopera.Value, error) {
			lines, err := bioopera.StrList(args["lines"])
			if err != nil {
				return nil, err
			}
			return map[string]bioopera.Value{"banner": bioopera.Str(strings.Join(lines, "\n"))}, nil
		},
	}))

	// 2. A local runtime: activities really execute, on 4 workers.
	rt, err := bioopera.NewLocalRuntime(bioopera.LocalConfig{Workers: 4, Library: lib})
	must(err)
	defer rt.Close()
	must(rt.RegisterTemplateSource(src))

	// 3. Throw three parties at once, each started from its own
	// goroutine: the engine is internally synchronized (per-instance
	// sharded locking), so concurrent clients need no locking of their
	// own.
	parties := [][]string{
		{"Ada", "Grace", "Barbara", "Edsger"},
		{"Alan", "Kurt", "Alonzo"},
		{"Radia", "Frances"},
	}
	ids := make([]string, len(parties))
	var wg sync.WaitGroup
	for i, names := range parties {
		wg.Add(1)
		go func(i int, names []string) {
			defer wg.Done()
			guests := make([]bioopera.Value, len(names))
			for j, n := range names {
				guests[j] = bioopera.Str(n)
			}
			id, err := rt.StartProcess("Party",
				map[string]bioopera.Value{"guests": bioopera.List(guests...)},
				bioopera.StartOptions{})
			must(err)
			ids[i] = id
		}(i, names)
	}
	wg.Wait()

	// 4. Wait for every party and print its banner.
	for _, id := range ids {
		in, err := rt.Wait(id, 10*time.Second)
		must(err)
		fmt.Printf("instance %s finished: %s (%d activities, CPU %v)\n",
			in.ID, in.Status, in.Activities, in.CPU.Round(time.Millisecond))
		fmt.Println(in.Outputs["banner"].AsStr())
		fmt.Println()
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
