// The tower of information (the paper's Fig. 1): the multi-step
// computational-biology pipeline that motivates BioOpera, run for real as
// a hierarchical process — every floor is a subprocess, the translation
// and structure-prediction floors are parallel tasks.
//
//	raw DNA → genes → proteins → pairwise distances →
//	multiple alignment + phylogenetic tree → ancestral sequence →
//	secondary-structure predictions
//
//	go run ./examples/tower
package main

import (
	"fmt"
	"log"
	"time"

	"bioopera"
)

func main() {
	dna, planted := bioopera.GenerateGenome(5, 2026)
	fmt.Printf("synthetic genome: %d bases, %d planted genes\n\n", len(dna), len(planted))

	lib := bioopera.NewLibrary()
	must(bioopera.RegisterTower(lib))
	rt, err := bioopera.NewLocalRuntime(bioopera.LocalConfig{Workers: 4, Library: lib})
	must(err)
	defer rt.Close()
	must(rt.RegisterTemplateSource(bioopera.TowerSource))

	start := time.Now()
	id, err := rt.StartProcess(bioopera.TowerTemplate,
		bioopera.TowerInputs(dna, 30, 60), bioopera.StartOptions{})
	must(err)
	in, err := rt.Wait(id, 5*time.Minute)
	must(err)
	if in.Status != bioopera.InstanceDone {
		log.Fatalf("tower: %s (%s)", in.Status, in.FailureReason)
	}
	fmt.Printf("tower completed in %v (%d activities across %d subprocess floors)\n\n",
		time.Since(start).Round(time.Millisecond), in.Activities, 7)

	proteins, _ := bioopera.StrList(in.Outputs["proteins"])
	fmt.Printf("floor 1-2  genes → proteins: %d found (planted %d)\n", len(proteins), len(planted))

	msa, _ := bioopera.StrList(in.Outputs["alignment"])
	if len(msa) > 0 {
		fmt.Printf("floor 3-4  multiple alignment: %d rows × %d columns\n", len(msa), len(msa[0]))
	}

	fmt.Printf("floor 5    phylogenetic tree: %s\n", trunc(in.Outputs["tree"].AsStr(), 90))

	anc := in.Outputs["ancestor"].AsStr()
	fmt.Printf("floor 6    ancestral sequence: %d aa, %s\n", len(anc), trunc(anc, 60))

	preds, _ := bioopera.StrList(in.Outputs["predictions"])
	fmt.Printf("floor 7    secondary structure (H=helix, E=sheet, C=coil):\n")
	for i := range proteins {
		if i == 4 {
			fmt.Printf("           ... and %d more\n", len(proteins)-4)
			break
		}
		fmt.Printf("           %s\n           %s\n", trunc(proteins[i], 72), trunc(preds[i], 72))
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
