// Human-in-the-loop computing (§3.4): "the monitor allows users to
// actively influence the computation ... users will be able to check
// intermediate results and change or eliminate them if necessary."
//
// The process aligns two synthetic protein families, then *waits* at an
// AWAIT gate. The "scientist" (this program) inspects the intermediate
// match count and decides: if the first pass found too few matches, it
// lowers the score threshold before approving; the final refinement then
// uses the corrected parameter.
//
//	go run ./examples/interactive
package main

import (
	"fmt"
	"log"
	"time"

	"bioopera"
)

const src = `
PROCESS Curated "All-vs-all with a scientist's checkpoint" {
  INPUT db, threshold;
  OUTPUT matches, used_threshold;

  ACTIVITY FirstPass {
    CALL lab.scan(db = db, threshold = threshold);
    OUT found;
    MAP found -> preliminary;
  }

  ACTIVITY Review {
    AWAIT "approved";
    OUT threshold;
    MAP threshold -> final_threshold;
  }

  ACTIVITY FinalPass {
    CALL lab.refine(db = db, threshold = final_threshold);
    OUT found, used;
    MAP found -> matches, used -> used_threshold;
  }

  FirstPass -> Review;
  Review -> FinalPass;
}
`

func main() {
	ds := bioopera.GenerateDataset(bioopera.GenOptions{
		N: 30, MeanLen: 90, Seed: 77, FamilyFraction: 0.4, FamilyPAM: 45,
	})

	lib := bioopera.NewLibrary()
	scan := func(threshold float64) int {
		c := &bioopera.AllVsAllConfig{Dataset: ds}
		c.Fixed.Threshold = threshold
		n := 0
		// Reuse the real alignment engine through the workload config.
		lib2 := bioopera.NewLibrary()
		bioopera.RegisterAllVsAll(lib2, c)
		p, _ := lib2.Lookup("avsa.align_fixed")
		out, err := p.Run(bioopera.ProgramCtx{}, map[string]bioopera.Value{
			"part":  bioopera.List(bioopera.Int(0), bioopera.Int(ds.Len())),
			"queue": bioopera.List(bioopera.Int(0), bioopera.Int(ds.Len())),
			"db":    bioopera.Str(ds.Name),
		})
		if err == nil {
			n = out["matches"].Len()
		}
		return n
	}
	must(lib.Register(bioopera.Program{
		Name: "lab.scan",
		Run: func(_ bioopera.ProgramCtx, args map[string]bioopera.Value) (map[string]bioopera.Value, error) {
			return map[string]bioopera.Value{
				"found": bioopera.Int(scan(args["threshold"].AsNum())),
			}, nil
		},
	}))
	must(lib.Register(bioopera.Program{
		Name: "lab.refine",
		Run: func(_ bioopera.ProgramCtx, args map[string]bioopera.Value) (map[string]bioopera.Value, error) {
			thr := args["threshold"].AsNum()
			return map[string]bioopera.Value{
				"found": bioopera.Int(scan(thr)),
				"used":  bioopera.Num(thr),
			}, nil
		},
	}))

	rt, err := bioopera.NewLocalRuntime(bioopera.LocalConfig{Workers: 2, Library: lib})
	must(err)
	defer rt.Close()
	must(rt.RegisterTemplateSource(src))

	const initialThreshold = 2500 // deliberately too strict
	id, err := rt.StartProcess("Curated", map[string]bioopera.Value{
		"db":        bioopera.Str(ds.Name),
		"threshold": bioopera.Num(initialThreshold),
	}, bioopera.StartOptions{})
	must(err)

	// Wait until the process parks at the Review gate.
	for {
		var awaiting []string
		rt.Do(func(e *bioopera.Engine) { awaiting = e.Awaiting(id) })
		if len(awaiting) == 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The scientist checks the intermediate result...
	var preliminary int
	rt.Do(func(e *bioopera.Engine) {
		lg, err := e.Lineage(id)
		must(err)
		fmt.Printf("process parked at the Review gate (producer of preliminary: %s)\n",
			lg.Producer("preliminary"))
	})
	rt.Do(func(e *bioopera.Engine) {
		in, _ := e.Instance(id)
		fmt.Printf("instance progress: %.0f%%\n", 100*in.Progress())
	})
	// Read the whiteboard through a parameter... the example keeps it
	// simple: re-run the scan to see what the first pass saw.
	preliminary = scan(initialThreshold)
	fmt.Printf("first pass at threshold %d found %d matches\n", initialThreshold, preliminary)

	// ...and corrects the parameter before approving.
	finalThreshold := float64(initialThreshold)
	if preliminary < 5 {
		finalThreshold = 80
		fmt.Printf("too few — scientist lowers the threshold to %.0f and approves\n", finalThreshold)
	} else {
		fmt.Println("looks fine — scientist approves as-is")
	}
	rt.Do(func(e *bioopera.Engine) {
		must(e.Signal(id, "approved", map[string]bioopera.Value{
			"threshold": bioopera.Num(finalThreshold),
		}))
	})

	in, err := rt.Wait(id, time.Minute)
	must(err)
	if in.Status != bioopera.InstanceDone {
		log.Fatalf("process %s: %s", in.Status, in.FailureReason)
	}
	fmt.Printf("\nfinal pass at threshold %.0f found %v matches\n",
		in.Outputs["used_threshold"].AsNum(), in.Outputs["matches"].AsNum())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
